// Reproduces Table 1: 10-fold cross-validation accuracy of account and
// user prediction from query syntax alone, with randomized-decision-tree
// labelers over Doc2Vec vs LSTM-autoencoder embeddings.
//
// Paper's numbers:        Account     User
//   Doc2Vec                78.8%      39.0%
//   LSTMAutoencoder        99.1%      55.4%
//
// Expected shape here: the LSTM embedder beats Doc2Vec on both tasks;
// account prediction is near-perfect for the LSTM (schemas are
// account-private); user prediction is much harder because two large
// accounts consist mostly of shared query texts issued by many users.

#include <memory>
#include <thread>

#include "bench/bench_common.h"
#include "ml/crossval.h"
#include "ml/random_forest.h"
#include "util/thread_pool.h"
#include "util/topology.h"

namespace querc::bench {
namespace {

struct TaskResult {
  double account_accuracy = 0.0;
  double user_accuracy = 0.0;
  std::vector<int> user_oof;  // out-of-fold user predictions (for Table 2)
};

TaskResult RunLabeling(const embed::Embedder& embedder,
                       const workload::Workload& labeled, int folds) {
  // Embedding the 10-fold corpus is the bench's dominant cost; fan it out.
  static util::ThreadPool pool(util::DefaultThreadCount());
  std::vector<nn::Vec> vectors = embed::EmbedWorkload(embedder, labeled, &pool);

  auto forest_factory = [] {
    return std::make_unique<ml::RandomForestClassifier>(
        ml::RandomForestClassifier::Options{.num_trees = 40});
  };

  TaskResult result;
  {
    ml::Dataset data;
    data.x = vectors;
    ml::LabelEncoder accounts;
    for (const auto& q : labeled) data.y.push_back(accounts.FitId(q.account));
    result.account_accuracy =
        ml::StratifiedKFold(data, folds, forest_factory, 101).MeanAccuracy();
  }
  {
    ml::Dataset data;
    data.x = std::move(vectors);
    ml::LabelEncoder users;
    for (const auto& q : labeled) data.y.push_back(users.FitId(q.user));
    auto cv = ml::StratifiedKFold(data, folds, forest_factory, 102);
    result.user_accuracy = cv.MeanAccuracy();
    result.user_oof = std::move(cv.oof_predictions);
  }
  return result;
}

int Main() {
  std::printf("=== Table 1: query labeling (10-fold CV accuracy) ===\n");
  workload::Workload pretrain = SnowflakePretrainCorpus();
  workload::Workload labeled = SnowflakeLabeledWorkload();
  std::printf("pre-training corpus: %zu queries; labeled workload: %zu "
              "queries, %zu accounts, %zu users\n",
              pretrain.size(), labeled.size(),
              labeled.CountBy(workload::AccountOf).size(),
              labeled.CountBy(workload::UserOf).size());

  // Embedders pre-trained on the (separate) unlabeled corpus PLUS the
  // labeled queries' text — mirroring the paper's setup where the 500k
  // pre-training corpus comes from the same service as the 200k labeled
  // queries (same tenants, disjoint log windows).
  workload::Workload corpus = pretrain;
  corpus.Append(labeled);

  embed::Doc2VecEmbedder doc2vec(Doc2VecBenchOptions());
  embed::LstmAutoencoderEmbedder lstm(LstmBenchOptions());
  TrainEmbedder(doc2vec, corpus, "doc2vec");
  TrainEmbedder(lstm, corpus, "lstm-autoencoder");

  const int kFolds = 10;
  util::Stopwatch watch;
  TaskResult d2v = RunLabeling(doc2vec, labeled, kFolds);
  std::printf("  doc2vec labeling done in %.1fs\n", watch.ElapsedSeconds());
  watch.Reset();
  TaskResult ae = RunLabeling(lstm, labeled, kFolds);
  std::printf("  lstm labeling done in %.1fs\n", watch.ElapsedSeconds());

  util::TableWriter table(
      {"method", "account_labeling", "user_labeling"});
  table.AddRow({"Doc2Vec",
                util::TableWriter::Num(100.0 * d2v.account_accuracy, 1) + "%",
                util::TableWriter::Num(100.0 * d2v.user_accuracy, 1) + "%"});
  table.AddRow({"LSTMAutoencoder",
                util::TableWriter::Num(100.0 * ae.account_accuracy, 1) + "%",
                util::TableWriter::Num(100.0 * ae.user_accuracy, 1) + "%"});
  EmitTable(table, "Table 1 — query labeling results (10-fold CV)",
            "table1_labeling.csv");

  std::printf("\npaper reported: Doc2Vec 78.8%% / 39%%, LSTMAutoencoder "
              "99.1%% / 55.4%%\n");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
