#ifndef QUERC_EMBED_FEATURE_EMBEDDER_H_
#define QUERC_EMBED_FEATURE_EMBEDDER_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "sql/dialect.h"
#include "util/statusor.h"

namespace querc::embed {

/// The hand-engineered baseline the paper argues against: task-specific
/// syntactic features in the tradition of Chaudhuri et al. — counts of
/// joins, group-by columns, predicates by operator class, aggregates,
/// subquery depth, plus hashed table/column-name buckets to give coarse
/// schema signal. Requires a working structural analyzer for each SQL
/// dialect (precisely the brittle dependency learned embeddings remove).
///
/// Train() is a near-no-op (it only fits per-feature scale factors so
/// distances are comparable across features).
class FeatureEmbedder : public Embedder {
 public:
  struct Options {
    sql::Dialect dialect = sql::Dialect::kGeneric;
    /// Number of hash buckets for table-name and column-name vocabularies.
    size_t table_hash_buckets = 8;
    size_t column_hash_buckets = 8;
  };

  explicit FeatureEmbedder(const Options& options);

  /// Fits per-dimension scaling (inverse standard deviation) on the corpus.
  util::Status Train(
      const std::vector<std::vector<std::string>>& docs) override;

  nn::Vec Embed(const std::vector<std::string>& words) const override;

  size_t dim() const override;
  std::string name() const override { return "features"; }

  /// Raw (unscaled) feature vector for a token sequence; exposed for tests.
  nn::Vec RawFeatures(const std::vector<std::string>& words) const;

  /// Human-readable names of the fixed (non-hashed) feature slots.
  static std::vector<std::string> FixedFeatureNames();

  util::Status Save(std::ostream& out) const;
  static util::StatusOr<FeatureEmbedder> Load(std::istream& in);

 private:
  Options options_;
  nn::Vec scale_;  // per-dimension inverse stddev (1.0 until trained)
};

}  // namespace querc::embed

#endif  // QUERC_EMBED_FEATURE_EMBEDDER_H_
