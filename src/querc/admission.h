#ifndef QUERC_QUERC_ADMISSION_H_
#define QUERC_QUERC_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "querc/resilience.h"
#include "util/concurrent_aggregator.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "workload/workload.h"

namespace querc::core {

/// Why admission shed a query — the `reason` label on
/// querc_shed_total{policy,account,reason}.
enum class ShedReason {
  kQuota = 0,     ///< the tenant's token bucket was empty
  kFairness = 1,  ///< weighted-fair split of a scarce global capacity
  kGlobal = 2,    ///< the pool-wide slot reservation could not cover it
};

/// Stable lowercase label ("quota", "fairness", "global").
const char* ShedReasonName(ShedReason reason);

/// Per-account admission parameters.
struct TenantQuota {
  /// Token-bucket capacity (maximum burst). 0 disables the quota stage
  /// for this tenant — it is only bounded by fairness + the global cap.
  double burst = 0.0;
  /// Sustained refill in tokens (queries) per second.
  double rate_per_sec = 0.0;
  /// Relative weighted-fair share under contention. Clamped to a small
  /// positive floor so a zero/negative weight cannot starve arithmetic.
  double weight = 1.0;
};

struct TenantAdmissionOptions {
  /// Applied to any account without an explicit entry in `tenants`.
  TenantQuota default_quota;
  /// Per-account overrides (quota and/or fair-share weight).
  std::map<std::string, TenantQuota> tenants;
  /// Policy label stamped on this controller's querc_shed_total series;
  /// the pool passes its ShedPolicy name so the series composes with the
  /// pre-tenant {policy} series.
  std::string policy_label = "reject_new";
  /// Soft bound on tracked per-account states. Past it, inserting a new
  /// account evicts the least-recently-active tenant with nothing in
  /// flight (drop-counted via evicted_tenants()); when every tenant has
  /// work in flight the bound is allowed to overshoot rather than lose
  /// accounting.
  size_t max_tenants = 1024;
  /// Injectable microsecond clock so bucket refill (and therefore every
  /// admission decision) is deterministic in tests and drills. Null =
  /// the real steady clock.
  ClockFn clock;
};

/// One query's admission verdict.
struct AdmitDecision {
  bool admitted = true;
  /// Valid only when !admitted.
  ShedReason reason = ShedReason::kGlobal;
};

/// Point-in-time per-tenant accounting row (for `querc stats`).
struct TenantAdmissionStats {
  std::string account;
  double tokens = 0.0;  ///< current bucket level (burst == 0 -> unlimited)
  double weight = 1.0;
  size_t in_flight = 0;
  uint64_t admitted = 0;
  uint64_t shed_quota = 0;
  uint64_t shed_fairness = 0;
  uint64_t shed_global = 0;

  uint64_t shed_total() const {
    return shed_quota + shed_fairness + shed_global;
  }
};

/// Per-account admission ahead of the pool's global slot reservation
/// (DESIGN.md §16). Two stages, decided per batch under one lock:
///
///   1. Quota — a token bucket per account (burst + sustained rate). A
///      tenant's queries are admitted head-first up to its tokens; the
///      tail is shed with reason=quota. Refill is driven by the
///      injectable clock, so drills replay bit-identically.
///   2. Fairness — when the quota-admitted demand still exceeds the free
///      global capacity, the capacity is split by weighted max-min
///      fairness (iterative water-filling over per-tenant pending
///      queues). Under-quota tenants are allocated FIRST and each active
///      tenant is guaranteed at least one slot per filling round — the
///      guaranteed-minimum share: an over-quota tenant is always shed
///      before an under-quota tenant is ever touched. The excess is shed
///      with reason=fairness.
///
/// Reason=global is reserved for sheds decided outside the controller:
/// the pool's CAS slot reservation racing a concurrent batch (reported
/// back via OnGlobalShed so per-tenant totals stay complete).
///
/// Every shed is triple-accounted — querc_shed_total{policy,account,
/// reason} counters (cached per tenant; the registry mutex is never on
/// the overload path after first contact), a flight-recorder kShed event
/// labeled with the account (detail = reason), and a bounded
/// ConcurrentAggregator keyed by account so `querc stats` can surface
/// the top-N tenants by shed count. Admitted queries drive the
/// querc_tenant_in_flight{account} gauge until Release().
///
/// Thread-safe: AdmitBatch/AdmitOne/Release/OnGlobalShed may race from
/// every pool caller. admission.mu ranks below the metrics registry and
/// flight recorder (both are touched under it) and is never held while
/// calling back into the pool.
class TenantAdmissionController {
 public:
  explicit TenantAdmissionController(const TenantAdmissionOptions& options);

  /// Decides the whole batch in arrival order: quota per tenant, then a
  /// weighted-fair split of `capacity` (the pool's free global slots;
  /// SIZE_MAX = unbounded, fairness skipped). Returns one decision per
  /// query, index-aligned with `batch`. Every admitted query must be
  /// returned via Release() (or reclassified via OnGlobalShed()).
  std::vector<AdmitDecision> AdmitBatch(const workload::Workload& batch,
                                        size_t capacity) EXCLUDES(mu_);

  /// Single-query admission for the pool's inline Process path. Only the
  /// quota stage applies (a lone query has no batch to be fair within;
  /// the global bound still applies downstream).
  AdmitDecision AdmitOne(const workload::LabeledQuery& query) EXCLUDES(mu_);

  /// Returns `n` of `account`'s admitted slots.
  void Release(const std::string& account, size_t n = 1) EXCLUDES(mu_);

  /// Reclassifies one previously-admitted query as shed with
  /// reason=global: the pool's slot reservation lost a race with a
  /// concurrent batch. Undoes the in-flight accounting and records the
  /// shed against `account`.
  void OnGlobalShed(const std::string& account) EXCLUDES(mu_);

  /// Every tracked tenant's row, account-sorted.
  std::vector<TenantAdmissionStats> Stats() const EXCLUDES(mu_);

  /// The `n` tenants with the most sheds, worst first (count == weight ==
  /// sheds in the aggregator, so Top ranks by shed count; survives tenant
  /// -state eviction since the aggregator is its own bounded store).
  std::vector<util::AggregateEntry> TopSheds(size_t n) const;

  /// Sheds recorded by this controller, per reason and total.
  uint64_t shed_for(ShedReason reason) const {
    return shed_totals_[static_cast<size_t>(reason)].load(
        std::memory_order_relaxed);
  }
  uint64_t shed_total() const {
    return shed_for(ShedReason::kQuota) + shed_for(ShedReason::kFairness) +
           shed_for(ShedReason::kGlobal);
  }

  /// Tenant states displaced by the max_tenants bound.
  uint64_t evicted_tenants() const {
    return evicted_tenants_.load(std::memory_order_relaxed);
  }

  size_t tracked_tenants() const EXCLUDES(mu_);

 private:
  struct TenantState {
    TenantQuota quota;
    double tokens = 0.0;
    int64_t last_refill_us = 0;
    int64_t last_active_us = 0;  // eviction ordering
    size_t in_flight = 0;
    uint64_t admitted = 0;
    uint64_t sheds[3] = {0, 0, 0};  // indexed by ShedReason
    /// Metric series resolved once per tenant; afterwards the overload
    /// path touches only these atomics.
    obs::Gauge* in_flight_gauge = nullptr;
    obs::Counter* shed_counters[3] = {nullptr, nullptr, nullptr};
  };

  /// One tenant's slice of a batch during AdmitBatch.
  struct Group {
    std::string account;
    TenantState* state = nullptr;
    std::vector<size_t> indices;  // batch positions, arrival order
    size_t quota_ok = 0;          // head prefix surviving the bucket
    size_t granted = 0;           // final fairness grant (<= quota_ok)
    bool over_quota = false;      // the bucket clipped this batch
  };

  int64_t NowUs() const;
  TenantState& StateForLocked(const std::string& account, int64_t now_us)
      REQUIRES(mu_);
  void RefillLocked(TenantState& state, int64_t now_us) REQUIRES(mu_);
  void ShedLocked(const std::string& account, TenantState& state,
                  ShedReason reason) REQUIRES(mu_);
  void AdmitLocked(const std::string& account, TenantState& state,
                   size_t n, int64_t now_us) REQUIRES(mu_);
  /// Weighted max-min water-filling of `capacity` over `groups`
  /// (pending = quota_ok - granted); returns the total granted. Each
  /// round hands every still-active tenant at least one slot (the
  /// guaranteed minimum) while capacity allows.
  static size_t AllocateFair(std::vector<Group*>& groups, size_t capacity);

  TenantAdmissionOptions options_;
  mutable util::Mutex mu_{util::LockRank::kAdmission, "admission.mu"};
  std::map<std::string, TenantState> tenants_ GUARDED_BY(mu_);
  std::atomic<uint64_t> shed_totals_[3] = {{0}, {0}, {0}};
  std::atomic<uint64_t> evicted_tenants_{0};
  /// Bounded per-account shed tally for `querc stats` top-N (count and
  /// weight both = sheds).
  util::ConcurrentAggregator sheds_by_account_;
};

/// Bounded account -> CircuitBreaker map: breaker keys gain the account
/// dimension so one tenant's failing sink opens only that tenant's
/// breaker. At `capacity` a new account evicts the least-used breaker,
/// preferring one that is currently closed (an open breaker is live
/// fault evidence) — the ConcurrentAggregator evict-least discipline
/// applied to breakers, with every displacement counted
/// (querc_tenant_breakers_evicted_total).
class TenantBreakerMap {
 public:
  struct Options {
    /// Breaker name prefix; a tenant's breaker is "<prefix>:<account>".
    std::string name_prefix;
    CircuitBreakerOptions breaker;
    size_t capacity = 64;
  };

  explicit TenantBreakerMap(Options options);

  /// The account's breaker, created (possibly evicting) on first use.
  /// The returned shared_ptr keeps the breaker alive across a concurrent
  /// eviction.
  std::shared_ptr<CircuitBreaker> GetOrCreate(const std::string& account)
      EXCLUDES(mu_);

  /// Every resident breaker with its state, account-sorted.
  std::vector<std::pair<std::string, CircuitBreaker::State>> States() const
      EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);
  uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<CircuitBreaker> breaker;
    uint64_t uses = 0;
  };

  Options options_;
  mutable util::Mutex mu_{util::LockRank::kTenantBreakers,
                          "qworker.tenant_breakers"};
  std::map<std::string, Entry> breakers_ GUARDED_BY(mu_);
  std::atomic<uint64_t> evicted_{0};
};

}  // namespace querc::core

#endif  // QUERC_QUERC_ADMISSION_H_
