#!/usr/bin/env python3
"""Project-invariant source linter (DESIGN.md §15).

Enforces the concurrency conventions that the compiler cannot:

  raw-mutex       std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock / std::shared_lock /
                  std::condition_variable (and recursive/shared/timed
                  variants) are banned outside src/util/ — service code
                  must use util::Mutex / util::MutexLock / util::CondVar
                  so every lock is annotated and rank-checked.
  raw-thread      constructing a std::thread is banned outside src/util/ —
                  threads must come from util::SpawnThread (named, best-
                  effort pinnable) or util::ThreadPool (laned, telemetered)
                  so no worker bypasses the topology layer. Declaring an
                  empty handle (std::thread t;) or a member stays legal:
                  only construction with a body is flagged.
  detached-thread std::thread::detach() is banned everywhere: a detached
                  thread outlives scoped state invisibly and can never be
                  drained on shutdown (every thread in the tree is joined
                  by an owner).
  locked-suffix   a method annotated REQUIRES(...) must be named with a
                  `Locked` suffix, so call sites read as what they are.

Usage:
  tools/check_source.py [--root DIR]   lint DIR (default: repo root);
                                       exit 1 if any finding
  tools/check_source.py --selftest     run the rule fixtures under
                                       tests/check_source/ against their
                                       golden findings; exit 1 on drift

Run as a ctest (`check_source`, `check_source_goldens`) by
tests/CMakeLists.txt.
"""

import argparse
import pathlib
import re
import sys

# Directories scanned relative to the root, and the extensions that count.
SCAN_DIRS = ("src", "tools")
CPP_EXTENSIONS = (".h", ".cc")

# src/util/ implements the wrapper layer itself and is the one place raw
# primitives may appear.
RAW_MUTEX_EXEMPT_PREFIX = "src/util/"

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_|recursive_timed_)?mutex\b"
    r"|std::lock_guard\b"
    r"|std::unique_lock\b"
    r"|std::scoped_lock\b"
    r"|std::shared_lock\b"
    r"|std::condition_variable(?:_any)?\b"
)
# std::thread directly (or through one identifier) followed by ( or { is
# a construction with a body. `std::thread t;`, member declarations, and
# `std::vector<std::thread>` have no following ( or { and stay legal.
RAW_THREAD_RE = re.compile(
    r"std::thread\s*[({]"
    r"|std::thread\s+[A-Za-z_]\w*\s*[({]"
)
DETACH_RE = re.compile(r"\.\s*detach\s*\(")
# An identifier-named parameter list directly followed by REQUIRES(...)
# (possibly through const/noexcept). Lambdas don't match: no identifier
# precedes their parameter list.
REQUIRES_METHOD_RE = re.compile(
    r"\b(?P<name>[A-Za-z_]\w*)\s*\([^()]*\)\s*(?:const\s*)?(?:noexcept\s*)?"
    r"REQUIRES(?:_SHARED)?\s*\("
)
LOCKED_SUFFIX_ALLOWLIST = {
    # util::CondVar's waits: REQUIRES is their calling contract, not a
    # private locked-helper naming situation.
    "Wait", "WaitUntil", "WaitFor",
}


def strip_comments(text):
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so finding line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; keep line count honest
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def lint_file(relpath, text):
    """Yields (relpath, line, rule, message) findings for one file."""
    code = strip_comments(text)

    if not relpath.startswith(RAW_MUTEX_EXEMPT_PREFIX):
        for m in RAW_MUTEX_RE.finditer(code):
            yield (relpath, line_of(code, m.start()), "raw-mutex",
                   f"{m.group(0)} is banned outside src/util/; use "
                   "util::Mutex / util::MutexLock / util::CondVar "
                   "(util/mutex.h)")

    if not relpath.startswith(RAW_MUTEX_EXEMPT_PREFIX):
        for m in RAW_THREAD_RE.finditer(code):
            yield (relpath, line_of(code, m.start()), "raw-thread",
                   "raw std::thread construction is banned outside "
                   "src/util/; spawn via util::SpawnThread or "
                   "util::ThreadPool (util/topology.h)")

    for m in DETACH_RE.finditer(code):
        yield (relpath, line_of(code, m.start()), "detached-thread",
               "detached threads are banned; every thread must be joined "
               "by an owner")

    for m in REQUIRES_METHOD_RE.finditer(code):
        name = m.group("name")
        if name.endswith("Locked") or name in LOCKED_SUFFIX_ALLOWLIST:
            continue
        yield (relpath, line_of(code, m.start()), "locked-suffix",
               f"method {name} is REQUIRES-annotated but not named with a "
               "Locked suffix")


def scan(root):
    findings = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CPP_EXTENSIONS or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            findings.extend(
                lint_file(rel, path.read_text(encoding="utf-8",
                                              errors="replace")))
    return findings


def format_finding(f):
    relpath, line, rule, message = f
    return f"{relpath}:{line}: [{rule}] {message}"


def selftest(root):
    """Lints each fixture under tests/check_source/fixtures/ and compares
    the full finding list against tests/check_source/expected.txt."""
    fixture_dir = root / "tests" / "check_source" / "fixtures"
    expected_path = root / "tests" / "check_source" / "expected.txt"
    got = []
    for path in sorted(fixture_dir.rglob("*")):
        if path.suffix not in CPP_EXTENSIONS or not path.is_file():
            continue
        rel = path.relative_to(fixture_dir).as_posix()
        got.extend(lint_file(rel, path.read_text(encoding="utf-8")))
    got_lines = [format_finding(f) for f in got]
    expected_lines = [
        line for line in
        expected_path.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.startswith("#")
    ]
    if got_lines != expected_lines:
        print("check_source selftest: fixture findings drifted from golden",
              file=sys.stderr)
        for line in got_lines:
            print(f"  got:      {line}", file=sys.stderr)
        for line in expected_lines:
            print(f"  expected: {line}", file=sys.stderr)
        return 1
    print(f"check_source selftest: {len(got_lines)} golden findings match")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args()

    if args.selftest:
        return selftest(args.root)

    findings = scan(args.root)
    for finding in findings:
        print(format_finding(finding))
    if findings:
        print(f"check_source: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("check_source: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
