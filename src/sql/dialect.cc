#include "sql/dialect.h"

#include <algorithm>
#include <array>

namespace querc::sql {

namespace {

// Sorted so we can binary-search. Keep this list sorted when editing.
constexpr std::array<std::string_view, 88> kCommonKeywords = {
    "ALL",      "AND",      "ANY",      "AS",       "ASC",      "AVG",
    "BETWEEN",  "BY",       "CASE",     "CAST",     "COALESCE", "COUNT",
    "CREATE",   "CROSS",    "CURRENT",  "DATE",     "DELETE",   "DESC",
    "DISTINCT", "DROP",     "ELSE",     "END",      "ESCAPE",   "EXCEPT",
    "EXISTS",   "EXTRACT",  "FALSE",    "FETCH",    "FIRST",    "FROM",
    "FULL",     "GROUP",    "HAVING",   "IN",       "INDEX",    "INNER",
    "INSERT",   "INTERSECT", "INTERVAL", "INTO",    "IS",       "JOIN",
    "LAST",     "LEFT",     "LIKE",     "LIMIT",    "MAX",      "MIN",
    "NATURAL",  "NOT",      "NULL",     "NULLS",    "OFFSET",   "ON",
    "OR",       "ORDER",    "OUTER",    "OVER",     "PARTITION", "PRIMARY",
    "RIGHT",    "ROW",      "ROWS",     "SELECT",   "SET",      "SOME",
    "SUBSTRING", "SUM",     "TABLE",    "THEN",     "TRUE",     "TRUNCATE",
    "UNION",    "UNIQUE",   "UPDATE",   "USING",    "VALUES",   "VIEW",
    "WHEN",     "WHERE",    "WITH",     "YEAR",     "MONTH",    "DAY",
    "HOUR",     "MINUTE",   "SECOND",   "KEY",
};

constexpr std::array<std::string_view, 8> kSqlServerExtra = {
    "APPLY", "GETDATE", "IDENTITY", "NOLOCK",
    "PIVOT", "TOP",     "UNPIVOT",  "DATEADD",
};

constexpr std::array<std::string_view, 8> kSnowflakeExtra = {
    "FLATTEN", "ILIKE",   "LATERAL", "MATCH_RECOGNIZE",
    "QUALIFY", "SAMPLE",  "TABLESAMPLE", "VARIANT",
};

template <size_t N>
bool Contains(const std::array<std::string_view, N>& sorted_or_not,
              std::string_view word) {
  // Lists are small; linear scan keeps the constexpr tables order-agnostic.
  return std::find(sorted_or_not.begin(), sorted_or_not.end(), word) !=
         sorted_or_not.end();
}

bool GenericIsKeyword(std::string_view word) { return IsCommonKeyword(word); }

bool SqlServerIsKeyword(std::string_view word) {
  return IsCommonKeyword(word) || Contains(kSqlServerExtra, word);
}

bool SnowflakeIsKeyword(std::string_view word) {
  return IsCommonKeyword(word) || Contains(kSnowflakeExtra, word);
}

constexpr DialectTraits kGenericTraits = {GenericIsKeyword, '\0', '\0', false,
                                          false};
constexpr DialectTraits kSqlServerTraits = {SqlServerIsKeyword, '[', ']', true,
                                            false};
constexpr DialectTraits kSnowflakeTraits = {SnowflakeIsKeyword, '\0', '\0',
                                            false, true};

}  // namespace

std::string_view DialectName(Dialect dialect) {
  switch (dialect) {
    case Dialect::kGeneric:
      return "generic";
    case Dialect::kSqlServer:
      return "sqlserver";
    case Dialect::kSnowflake:
      return "snowflake";
  }
  return "unknown";
}

const DialectTraits& GetDialectTraits(Dialect dialect) {
  switch (dialect) {
    case Dialect::kGeneric:
      return kGenericTraits;
    case Dialect::kSqlServer:
      return kSqlServerTraits;
    case Dialect::kSnowflake:
      return kSnowflakeTraits;
  }
  return kGenericTraits;
}

bool IsCommonKeyword(std::string_view word) {
  return Contains(kCommonKeywords, word);
}

}  // namespace querc::sql
