#ifndef QUERC_UTIL_TOPOLOGY_H_
#define QUERC_UTIL_TOPOLOGY_H_

#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace querc::util {

/// CPU topology of the machine (DESIGN.md §17): logical cpus, which
/// physical core each belongs to (SMT/cache siblings share a core id),
/// and which NUMA node. Detection reads Linux sysfs and degrades
/// gracefully — any parse failure, non-Linux platform, or restricted
/// container yields a flat single-node topology sized by
/// hardware_concurrency (with the 0 guard), so callers can always trust
/// the invariants: at least one cpu, every cpu has a core and a node,
/// 1 <= num_cores() <= num_cpus().
///
/// All sizing decisions in the tree route through this module (enforced
/// culturally, plus tools/check_source.py bans raw std::thread
/// construction outside src/util/): thread pools default to
/// DefaultThreadCount(), and pinned pools spread workers over `cpus` in
/// topology order.
struct Topology {
  struct Cpu {
    int id = 0;    ///< logical cpu index (the sched_setaffinity id)
    int core = 0;  ///< physical core id; SMT siblings share it
    int node = 0;  ///< NUMA node id
  };

  /// Online cpus in id order. Never empty after Detect()/Flat().
  std::vector<Cpu> cpus;

  size_t num_cpus() const { return cpus.size(); }
  /// Distinct physical cores (distinct (node, core) pairs).
  size_t num_cores() const;
  /// Distinct NUMA nodes (1 on single-socket or fallback topologies).
  size_t num_nodes() const;
  /// True when logical cpus outnumber physical cores (SMT active).
  bool smt() const { return num_cpus() > num_cores(); }

  /// Logical cpu ids on `node`, in topology order (empty if unknown).
  std::vector<int> CpusOfNode(int node) const;

  /// A synthesized topology: n cpus (0-guarded to 1), one core each, all
  /// on node 0. The universal fallback.
  static Topology Flat(size_t n);

  /// Reads /sys/devices/system/{node,cpu} on Linux; Flat fallback
  /// everywhere else or on any parse failure.
  static Topology Detect();

  /// Detect() once, cached for the process lifetime.
  static const Topology& System();
};

/// Parses a sysfs cpulist ("0-3,8,10-11") into ascending cpu ids.
/// Malformed fragments are skipped, never fatal.
std::vector<int> ParseCpuList(const std::string& text);

/// The project-wide thread-count default: System().num_cpus(), which is
/// hardware_concurrency with the mandated 0 guard. Never returns 0.
size_t DefaultThreadCount();

/// Pins the calling thread to logical cpu `cpu`. Returns false when the
/// platform does not support affinity or the syscall fails (restricted
/// container, offline cpu) — pinning is always best-effort, never fatal.
bool PinCurrentThreadToCpu(int cpu);

/// The project-wide chokepoint for raw thread construction
/// (tools/check_source.py bans `std::thread(...)` outside src/util/):
/// spawns a joinable thread running `fn`, best-effort tagging it `name`
/// (truncated to the platform limit) for debuggers and profilers.
std::thread SpawnThread(const char* name, std::function<void()> fn);

}  // namespace querc::util

#endif  // QUERC_UTIL_TOPOLOGY_H_
