#ifndef QUERC_EMBED_MODEL_IO_H_
#define QUERC_EMBED_MODEL_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "embed/embedder.h"
#include "util/statusor.h"

namespace querc::embed {

/// Polymorphic embedder persistence. Save dispatches on the concrete type
/// (Doc2Vec or LSTM autoencoder — FeatureEmbedder is stateless apart from
/// scaling and is rebuilt from options instead); Load sniffs the magic
/// number and reconstructs the right class.

util::Status SaveEmbedder(const Embedder& embedder, std::ostream& out);
util::Status SaveEmbedderFile(const Embedder& embedder,
                              const std::string& path);

util::StatusOr<std::unique_ptr<Embedder>> LoadEmbedder(std::istream& in);
util::StatusOr<std::unique_ptr<Embedder>> LoadEmbedderFile(
    const std::string& path);

}  // namespace querc::embed

#endif  // QUERC_EMBED_MODEL_IO_H_
