# Empty dependencies file for test_workload_io.
# This may be replaced when dependencies are built.
