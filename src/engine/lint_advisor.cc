#include "engine/lint_advisor.h"

#include <set>
#include <utility>

#include "util/string_util.h"

namespace querc::engine {

std::string CatalogSchemaProvider::TableOfColumn(
    const std::string& column) const {
  return catalog_->TableOfColumn(column);
}

bool CatalogSchemaProvider::HasTable(const std::string& table) const {
  return catalog_->Table(table) != nullptr;
}

uint64_t CatalogSchemaProvider::TableRowCount(const std::string& table) const {
  const TableStats* stats = catalog_->Table(table);
  return stats == nullptr ? 0 : stats->row_count;
}

size_t CatalogSchemaProvider::TableColumnCount(
    const std::string& table) const {
  const TableStats* stats = catalog_->Table(table);
  return stats == nullptr ? 0 : stats->columns.size();
}

namespace {

/// Cross-checks each query's filter columns against the advisor's
/// recommended configuration: a selective predicate on a large table that
/// no recommended index can serve means the query will scan, and the
/// diagnostic quotes the cost model's estimate for that plan.
class IndexCoverageRule : public sql::lint::Rule {
 public:
  IndexCoverageRule(const CostModel* model, IndexConfig config,
                    uint64_t min_table_rows)
      : model_(model),
        config_(std::move(config)),
        min_table_rows_(min_table_rows) {}

  std::string_view id() const override { return "index-coverage"; }
  sql::lint::Severity severity() const override {
    return sql::lint::Severity::kInfo;
  }
  std::string_view summary() const override {
    return "filter column on a large table is covered by no recommended "
           "index (query will scan)";
  }

  void Check(const sql::lint::QueryContext& ctx,
             std::vector<sql::lint::Diagnostic>* out) const override {
    std::set<std::pair<std::string, std::string>> reported;
    CheckShape(*ctx.shape, *ctx.shape, ctx, &reported, out);
  }

 private:
  bool Covered(const std::string& table, const std::string& column) const {
    for (const Index& index : config_) {
      if (index.table == table && !index.key_columns.empty() &&
          index.key_columns.front() == column) {
        return true;
      }
    }
    return false;
  }

  void CheckShape(const sql::QueryShape& root, const sql::QueryShape& shape,
                  const sql::lint::QueryContext& ctx,
                  std::set<std::pair<std::string, std::string>>* reported,
                  std::vector<sql::lint::Diagnostic>* out) const {
    const Catalog& catalog = model_->catalog();
    for (const sql::Predicate& p : shape.filters) {
      if (p.column.empty()) continue;
      // HAVING-aggregate pseudo-predicates are exactly the pattern where
      // an index misleads the optimizer (the Q18 effect); never suggest
      // covering those.
      if (util::StartsWith(p.op, "HAVING_") ||
          util::StartsWith(p.op, "IS ")) {
        continue;
      }
      std::string table = p.qualifier.empty()
                              ? catalog.TableOfColumn(p.column)
                              : shape.ResolveQualifier(p.qualifier);
      const TableStats* stats = catalog.Table(table);
      if (stats == nullptr || stats->row_count < min_table_rows_) continue;
      if (stats->Column(p.column) == nullptr) continue;
      if (Covered(table, p.column)) continue;
      if (!reported->insert({table, p.column}).second) continue;
      QueryCost cost = model_->Cost(root, config_);
      out->push_back(sql::lint::Diagnostic{
          std::string(id()), severity(), sql::lint::Span{},
          util::StrFormat(
              "filter on %s.%s is covered by no recommended index; the "
              "plan scans %llu rows (estimated %.3f s under the "
              "recommended configuration)",
              table.c_str(), p.column.c_str(),
              static_cast<unsigned long long>(stats->row_count),
              cost.estimated_seconds),
          util::StrFormat("consider an index on %s(%s), or relax the "
                          "advisor budget/storage limits",
                          table.c_str(), p.column.c_str()),
          ctx.query_index});
    }
    for (const sql::QueryShape& sub : shape.subqueries) {
      CheckShape(root, sub, ctx, reported, out);
    }
  }

  const CostModel* model_;
  IndexConfig config_;
  uint64_t min_table_rows_;
};

}  // namespace

AdvisorLintResult LintWorkloadWithAdvisor(
    const std::vector<std::string>& texts, const CostModel& model,
    const AdvisorLintOptions& options) {
  AdvisorLintResult result;
  TuningAdvisor advisor(&model, options.advisor);
  result.advisor = advisor.Recommend(texts, options.lint.dialect);

  CatalogSchemaProvider schema(&model.catalog());
  sql::lint::RuleRegistry registry = sql::lint::RuleRegistry::Builtin();
  registry.Register(std::make_unique<IndexCoverageRule>(
      &model, result.advisor.config, options.min_table_rows));
  // The registry is moved into the engine; the schema provider must only
  // outlive this call, which it does (stack scope).
  sql::lint::LintEngine engine(std::move(registry), options.lint, &schema);
  result.report = engine.LintTexts(texts);
  return result;
}

}  // namespace querc::engine
