file(REMOVE_RECURSE
  "CMakeFiles/test_workload_io.dir/test_workload_io.cc.o"
  "CMakeFiles/test_workload_io.dir/test_workload_io.cc.o.d"
  "test_workload_io"
  "test_workload_io.pdb"
  "test_workload_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
