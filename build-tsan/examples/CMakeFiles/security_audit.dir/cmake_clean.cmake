file(REMOVE_RECURSE
  "CMakeFiles/security_audit.dir/security_audit.cpp.o"
  "CMakeFiles/security_audit.dir/security_audit.cpp.o.d"
  "security_audit"
  "security_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
