#ifndef QUERC_OBS_TRACE_H_
#define QUERC_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace querc::obs {

/// The histogram `querc_stage_ms{stage=<stage>}` in the global registry —
/// one time series per pipeline stage (lex, normalize, embed, classify,
/// sink_database, sink_training, ...). Takes the registry mutex; hot call
/// sites should cache the reference in a function-local static.
Histogram& StageHistogram(const std::string& stage);

class Trace;

/// Scoped stage timer: records its elapsed milliseconds into `hist` when
/// it ends (destruction or End()). When constructed with a stage name and
/// a Trace is active on this thread, the (stage, ms) pair is also appended
/// to that trace's per-query breakdown. `stage` must outlive the trace —
/// pass a string literal. The record path touches only the histogram's
/// atomics: no mutex.
class Span {
 public:
  explicit Span(Histogram* hist, const char* stage = nullptr)
      : hist_(hist), stage_(stage), start_(Clock::now()) {}
  ~Span() { End(); }

  Span(Span&& other) noexcept
      : hist_(other.hist_), stage_(other.stage_), start_(other.start_) {
    other.hist_ = nullptr;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span& operator=(Span&&) = delete;

  /// Records once; further calls (and destruction) are no-ops.
  void End();

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* hist_;
  const char* stage_;
  Clock::time_point start_;
};

/// Per-request trace: marks this thread as "inside request `name`" for its
/// scope, collects the stage spans recorded on the way (lex → normalize →
/// embed → classify → sink), and optionally records the total duration
/// into `total_hist`. Traces nest (the previous trace is restored on
/// destruction); each trace is confined to the thread that created it.
class Trace {
 public:
  explicit Trace(const char* name, Histogram* total_hist = nullptr);
  ~Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// The innermost live trace on this thread, or nullptr.
  static Trace* Current();

  const char* name() const { return name_; }
  double ElapsedMs() const;

  /// Stage timings recorded so far, in completion order.
  const std::vector<std::pair<const char*, double>>& stages() const {
    return stages_;
  }
  void AddStage(const char* stage, double ms) { stages_.emplace_back(stage, ms); }

  /// One-line rendering: "name total_ms stage=ms stage=ms ...".
  std::string Summary() const;

 private:
  using Clock = std::chrono::steady_clock;
  const char* name_;
  Histogram* total_hist_;
  Trace* parent_;
  Clock::time_point start_;
  std::vector<std::pair<const char*, double>> stages_;
};

}  // namespace querc::obs

#endif  // QUERC_OBS_TRACE_H_
