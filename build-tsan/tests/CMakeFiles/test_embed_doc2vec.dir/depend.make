# Empty dependencies file for test_embed_doc2vec.
# This may be replaced when dependencies are built.
