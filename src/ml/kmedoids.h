#ifndef QUERC_ML_KMEDOIDS_H_
#define QUERC_ML_KMEDOIDS_H_

#include <functional>
#include <vector>

#include "util/rng.h"

namespace querc::ml {

/// K-medoids (PAM-style alternate/swap heuristic) over an arbitrary
/// distance function — the clustering core of the Chaudhuri et al. workload
/// compression baseline, which requires a *custom distance function per
/// workload* (the specialization the paper's learned embeddings remove).
struct KMedoidsOptions {
  int max_iterations = 50;
  uint64_t seed = 131;
};

struct KMedoidsResult {
  std::vector<size_t> medoids;  // indices of the representative points
  std::vector<int> assignment;  // medoid index position per point
  double total_cost = 0.0;      // sum of distances to assigned medoids
  int iterations = 0;
};

/// Clusters `n` points given `distance(i, j)`. Distances are cached in an
/// n x n matrix, so this is intended for workload-summary sizes (<= a few
/// thousand queries).
KMedoidsResult KMedoids(size_t n,
                        const std::function<double(size_t, size_t)>& distance,
                        size_t k, const KMedoidsOptions& options = {});

}  // namespace querc::ml

#endif  // QUERC_ML_KMEDOIDS_H_
