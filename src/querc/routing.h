#ifndef QUERC_QUERC_ROUTING_H_
#define QUERC_QUERC_ROUTING_H_

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "util/status.h"
#include "workload/workload.h"

namespace querc::core {

/// Query-routing policy checking (§4): policies mapping queries to cluster
/// resources are manually encoded and drift as clusters and tenants evolve.
/// Under the hypothesis that queries following one policy look alike, a
/// classifier trained on historical (query -> cluster) assignments can
/// predict the expected cluster; disagreement with the assigned cluster
/// signals a possible policy misconfiguration.
class RoutingPolicyChecker {
 public:
  struct Options {
    double min_confidence = 0.6;
    ml::RandomForestClassifier::Options forest;
  };

  struct Misrouting {
    size_t query_index = 0;
    std::string assigned_cluster;
    std::string predicted_cluster;
    double confidence = 0.0;
  };

  RoutingPolicyChecker(std::shared_ptr<const embed::Embedder> embedder,
                       const Options& options)
      : embedder_(std::move(embedder)),
        options_(options),
        forest_(options.forest) {}

  /// Learns the routing policy from correctly routed history.
  util::Status Train(const workload::Workload& history);

  /// Cluster this query is expected to route to ("" before Train()).
  std::string PredictCluster(const workload::LabeledQuery& query) const;

  /// Checks a batch against the learned policy.
  std::vector<Misrouting> Check(const workload::Workload& batch) const;

 private:
  std::shared_ptr<const embed::Embedder> embedder_;
  Options options_;
  ml::RandomForestClassifier forest_;
  ml::LabelEncoder clusters_;
  bool trained_ = false;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_ROUTING_H_
