// Measures obs::FlightRecorder — the always-on lock-free event journal
// behind per-query traces — and proves its two contracts: the record path
// costs tens of nanoseconds (one 64-byte store into a thread-local SPSC
// ring), and turning the recorder on costs the QWorker pipeline at most a
// few percent on bench_qworker_throughput's workload shape.
//
// Every bench_-prefixed metric is exported to BENCH_flightrec.json (see
// --out). With --smoke the sizes are truncated for a CI sanity run and
// the process fails unless (a) the journal's correctness contract holds —
// event conservation (recorded == drained + dropped + buffered) under
// concurrent writers and drains, exact ring-full drop counting, and
// cross-thread trace reassembly losing no spans — and (b) per-event
// record cost and recorder-on overhead stay under their gates.
// --no-perf-gate keeps (a) but waives (b): sanitizer builds distort
// timings, so tools/verify_matrix.sh passes it for asan/tsan.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "ml/random_forest.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "querc/classifier.h"
#include "querc/qworker_pool.h"

namespace querc::bench {
namespace {

using obs::EventKind;
using obs::FlightEvent;
using obs::FlightRecorder;

FlightEvent MakeSpanEvent(const obs::TraceContext& ctx, int64_t ts) {
  FlightEvent ev;
  ev.trace_id = ctx.trace_id;
  ev.span_id = ctx.span_id;
  ev.ts_us = ts;
  ev.dur_us = 1;
  ev.kind = static_cast<uint8_t>(EventKind::kSpan);
  ev.SetLabel("bench_stage");
  return ev;
}

/// Drains everything currently buffered so contract checks can reason in
/// exact stat deltas.
void DrainAll(FlightRecorder& rec) {
  std::vector<FlightEvent> sink;
  rec.Drain(&sink);
}

/// Per-event record cost with a concurrent drainer keeping the ring from
/// saturating — the steady-state shape (writer on the hot path, reader
/// polling) rather than the pathological full-ring one.
double MeasureRecordNs(FlightRecorder& rec, size_t events) {
  DrainAll(rec);
  std::atomic<bool> done{false};
  std::thread drainer([&] {
    std::vector<FlightEvent> sink;
    while (!done.load(std::memory_order_acquire)) {
      sink.clear();
      rec.Drain(&sink);
      std::this_thread::yield();
    }
  });
  obs::TraceContext ctx{obs::NewTraceId(), obs::NewSpanId()};
  FlightEvent ev = MakeSpanEvent(ctx, rec.NowUs());
  util::Stopwatch watch;
  for (size_t i = 0; i < events; ++i) rec.Record(ev);
  double ns = watch.ElapsedSeconds() * 1e9 / static_cast<double>(events);
  done.store(true, std::memory_order_release);
  drainer.join();
  DrainAll(rec);
  return ns;
}

/// Aggregate multi-writer throughput (events/second) with one drainer.
double MeasureMultiWriterRate(FlightRecorder& rec, size_t threads,
                              size_t events_per_thread) {
  DrainAll(rec);
  std::atomic<bool> done{false};
  std::thread drainer([&] {
    std::vector<FlightEvent> sink;
    while (!done.load(std::memory_order_acquire)) {
      sink.clear();
      rec.Drain(&sink);
      std::this_thread::yield();
    }
  });
  util::Stopwatch watch;
  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    writers.emplace_back([&] {
      obs::TraceContext ctx{obs::NewTraceId(), obs::NewSpanId()};
      FlightEvent ev = MakeSpanEvent(ctx, rec.NowUs());
      for (size_t i = 0; i < events_per_thread; ++i) rec.Record(ev);
    });
  }
  for (auto& w : writers) w.join();
  double seconds = watch.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  drainer.join();
  DrainAll(rec);
  return static_cast<double>(threads * events_per_thread) /
         std::max(seconds, 1e-9);
}

/// The journal's correctness contract, checked in every mode and under
/// every sanitizer:
///  1. conservation: N writers + concurrent drains lose nothing
///     (recorded == drained + dropped, with buffered == 0 after a final
///     drain);
///  2. ring-full drops are counted exactly (write 3x capacity with no
///     reader: capacity kept, 2x capacity dropped, nothing silent);
///  3. cross-thread reassembly: spans emitted from several threads under
///     one trace id all land in the one reassembled trace.
bool CheckContract(FlightRecorder& rec, size_t threads,
                   size_t events_per_thread) {
  bool ok = true;

  // 1. Conservation under concurrent writers + drains.
  {
    DrainAll(rec);
    FlightRecorder::Stats before = rec.stats();
    std::atomic<bool> done{false};
    std::atomic<uint64_t> collected{0};
    std::thread drainer([&] {
      std::vector<FlightEvent> sink;
      while (!done.load(std::memory_order_acquire)) {
        sink.clear();
        rec.Drain(&sink);
        collected.fetch_add(sink.size(), std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
    std::vector<std::thread> writers;
    for (size_t t = 0; t < threads; ++t) {
      writers.emplace_back([&] {
        obs::TraceContext ctx{obs::NewTraceId(), obs::NewSpanId()};
        FlightEvent ev = MakeSpanEvent(ctx, rec.NowUs());
        for (size_t i = 0; i < events_per_thread; ++i) rec.Record(ev);
      });
    }
    for (auto& w : writers) w.join();
    done.store(true, std::memory_order_release);
    drainer.join();
    std::vector<FlightEvent> tail;
    rec.Drain(&tail);
    collected.fetch_add(tail.size(), std::memory_order_relaxed);
    FlightRecorder::Stats after = rec.stats();
    uint64_t recorded = after.recorded - before.recorded;
    uint64_t drained = after.drained - before.drained;
    uint64_t dropped = after.dropped - before.dropped;
    uint64_t expect = threads * events_per_thread;
    if (recorded != expect || drained != collected.load() ||
        recorded != drained + dropped || after.buffered() != 0) {
      std::fprintf(stderr,
                   "FAIL: contract(1) conservation: recorded=%llu "
                   "(expect %llu) drained=%llu collected=%llu "
                   "dropped=%llu buffered=%llu\n",
                   (unsigned long long)recorded, (unsigned long long)expect,
                   (unsigned long long)drained,
                   (unsigned long long)collected.load(),
                   (unsigned long long)dropped,
                   (unsigned long long)after.buffered());
      ok = false;
    }
  }

  // 2. Exact drop counting: a fresh thread (fresh ring) writes 3x the
  // ring capacity with no reader running.
  {
    DrainAll(rec);
    FlightRecorder::Stats before = rec.stats();
    const size_t cap = FlightRecorder::kRingCapacity;
    std::thread writer([&] {
      obs::TraceContext ctx{obs::NewTraceId(), obs::NewSpanId()};
      FlightEvent ev = MakeSpanEvent(ctx, rec.NowUs());
      for (size_t i = 0; i < 3 * cap; ++i) rec.Record(ev);
    });
    writer.join();
    FlightRecorder::Stats mid = rec.stats();
    std::vector<FlightEvent> sink;
    size_t moved = rec.Drain(&sink);
    if (mid.recorded - before.recorded != 3 * cap ||
        mid.dropped - before.dropped != 2 * cap || moved < cap) {
      std::fprintf(stderr,
                   "FAIL: contract(2) drop counting: recorded=%llu "
                   "dropped=%llu drained=%zu (capacity %zu)\n",
                   (unsigned long long)(mid.recorded - before.recorded),
                   (unsigned long long)(mid.dropped - before.dropped), moved,
                   cap);
      ok = false;
    }
  }

  // 3. Cross-thread reassembly: spans from `threads` writers + a root
  // span on this thread, all one trace id, must fold into one trace with
  // every span present.
  {
    DrainAll(rec);
    obs::TraceContext ctx{obs::NewTraceId(), obs::NewSpanId()};
    const size_t per_thread = 50;
    // Rings are lane-recycled at thread exit; hold every writer alive
    // until all have claimed theirs so the spans land on distinct lanes.
    std::atomic<size_t> claimed{0};
    std::vector<std::thread> writers;
    for (size_t t = 0; t < threads; ++t) {
      writers.emplace_back([&] {
        rec.RecordSpan(ctx, rec.NowUs(), 1, "worker_span");
        claimed.fetch_add(1);
        while (claimed.load() < threads) std::this_thread::yield();
        for (size_t i = 1; i < per_thread; ++i) {
          rec.RecordSpan(ctx, rec.NowUs(), 1, "worker_span");
        }
      });
    }
    for (auto& w : writers) w.join();
    rec.RecordSpan(ctx, rec.NowUs(), 1, "root_span", /*root_span=*/true);
    obs::TraceCollector collector;
    collector.Poll(rec);
    std::vector<obs::FlightTrace> slow = collector.Slowest(1);
    size_t expect = threads * per_thread + 1;
    if (slow.size() != 1 || slow[0].events.size() != expect ||
        slow[0].num_threads() < 2) {
      std::fprintf(stderr,
                   "FAIL: contract(3) reassembly: %zu traces, %zu events "
                   "(expect %zu), %zu threads\n",
                   slow.size(), slow.empty() ? 0 : slow[0].events.size(),
                   expect, slow.empty() ? 0 : slow[0].num_threads());
      ok = false;
    }
  }
  return ok;
}

/// Total wall-clock of processing `queries` through a sharded pool, best
/// of `reps` (pool state — embed cache, deployed classifiers — is shared
/// and pre-warmed, so on/off runs see identical conditions).
double MeasureWorkloadMs(core::QWorkerPool& pool,
                         const workload::Workload& wl, size_t queries,
                         int reps) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    util::Stopwatch watch;
    for (size_t i = 0; i < queries; ++i) pool.Process(wl[i % wl.size()]);
    best = std::min(best, watch.ElapsedMillis());
  }
  return best;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool perf_gate = true;
  const char* out_path = "BENCH_flightrec.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-perf-gate") == 0) {
      perf_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_flight_recorder [--smoke] [--no-perf-gate] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  FlightRecorder& rec = FlightRecorder::Global();
  auto& registry = obs::MetricsRegistry::Global();

  const size_t record_events = smoke ? (1u << 17) : (1u << 21);  // 128k / 2M
  const size_t mt_threads = 8;
  const size_t mt_per_thread = smoke ? (1u << 14) : (1u << 18);

  std::printf("=== FlightRecorder: record path ===\n");
  double record_ns = MeasureRecordNs(rec, record_events);
  double mt_rate = MeasureMultiWriterRate(rec, mt_threads, mt_per_thread);
  std::printf("  record: %.1f ns/event (1 writer, concurrent drain)\n",
              record_ns);
  std::printf("  multi-writer: %.0f events/s (%zu writers)\n", mt_rate,
              mt_threads);
  registry
      .GetGauge("bench_flightrec_record_ns", {},
                "Per-event FlightRecorder::Record cost, nanoseconds")
      .Set(record_ns);
  registry
      .GetGauge("bench_flightrec_multiwriter_eps", {},
                "Aggregate record throughput with 8 writers, events/second")
      .Set(mt_rate);

  bool contract_ok =
      CheckContract(rec, /*threads=*/4, smoke ? 20000 : 100000);
  registry
      .GetGauge("bench_flightrec_contract_ok", {},
                "1 when conservation/drop-counting/reassembly checks passed")
      .Set(contract_ok ? 1.0 : 0.0);

  // Recorder-on vs recorder-off on bench_qworker_throughput's workload
  // shape: snowflake multi-tenant stream through a sharded QWorkerPool
  // with an embedding classifier deployed and no-op sinks.
  std::printf("=== recorder overhead on the QWorker pipeline ===\n");
  workload::SnowflakeGenerator::Options gopt;
  gopt.seed = 5;
  gopt.accounts = workload::SnowflakeGenerator::UniformAccounts(4, 250, 5);
  workload::Workload wl = workload::SnowflakeGenerator(gopt).Generate();

  auto eopt = Doc2VecBenchOptions();
  eopt.epochs = smoke ? 2 : 4;
  auto embedder = std::make_shared<embed::Doc2VecEmbedder>(eopt);
  TrainEmbedder(*embedder, wl, "doc2vec");
  auto classifier = std::make_shared<core::Classifier>(
      "user", embedder,
      std::make_unique<ml::RandomForestClassifier>(
          ml::RandomForestClassifier::Options{}));
  if (!classifier->Train(wl, workload::UserOf).ok()) {
    std::fprintf(stderr, "classifier training failed\n");
    return 1;
  }
  core::QWorkerPool::Options popt;
  popt.application = "bench_flightrec";
  popt.num_shards = 2;
  popt.worker.enable_lint = true;
  core::QWorkerPool pool(popt);
  pool.Deploy(classifier);
  pool.set_database_sink([](const workload::LabeledQuery&) {});
  pool.set_training_sink([](const core::ProcessedQuery&) {});

  const size_t queries = smoke ? 400 : 2000;
  const int reps = smoke ? 3 : 7;
  // Warm every cache (embed templates, counters) before timing; drain so
  // the timed runs start from an empty journal. On/off reps interleave so
  // machine drift (frequency scaling, page cache) cancels instead of
  // landing on one side of the ratio.
  MeasureWorkloadMs(pool, wl, queries, 1);
  DrainAll(rec);
  double off_ms = 1e300;
  double on_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    rec.set_enabled(false);
    off_ms = std::min(off_ms, MeasureWorkloadMs(pool, wl, queries, 1));
    rec.set_enabled(true);
    on_ms = std::min(on_ms, MeasureWorkloadMs(pool, wl, queries, 1));
    DrainAll(rec);
  }
  double ratio = on_ms / std::max(off_ms, 1e-9);
  std::printf("  %zu queries: recorder-off %.1f ms, recorder-on %.1f ms "
              "(ratio %.3f)\n",
              queries, off_ms, on_ms, ratio);
  registry
      .GetGauge("bench_flightrec_workload_ms", {{"recorder", "off"}},
                "QWorker pipeline wall-clock, recorder disabled, ms")
      .Set(off_ms);
  registry
      .GetGauge("bench_flightrec_workload_ms", {{"recorder", "on"}}, "")
      .Set(on_ms);
  registry
      .GetGauge("bench_flightrec_overhead_ratio", {},
                "recorder-on / recorder-off wall-clock on the QWorker "
                "pipeline workload")
      .Set(ratio);

  std::string json = obs::ExportJson(registry, "bench_");
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!contract_ok) return 1;
  if (smoke && perf_gate) {
    if (record_ns > 250.0) {
      std::fprintf(stderr,
                   "FAIL: record path %.1f ns/event exceeds the 250 ns "
                   "gate\n",
                   record_ns);
      return 1;
    }
    if (ratio > 1.05) {
      std::fprintf(stderr,
                   "FAIL: recorder-on overhead ratio %.3f exceeds the "
                   "1.05 gate\n",
                   ratio);
      return 1;
    }
  }
  if (smoke) std::printf("smoke OK\n");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main(int argc, char** argv) { return querc::bench::Main(argc, argv); }
