#ifndef QUERC_SQL_ANALYZER_H_
#define QUERC_SQL_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "sql/lexer.h"
#include "sql/token.h"

namespace querc::sql {

/// A single-column filter or join condition extracted from WHERE/ON/HAVING.
struct Predicate {
  /// Filter operators use the SQL spelling ("=", "<", ">=", "BETWEEN",
  /// "IN", "LIKE", "IS NULL", "IS NOT NULL"); subquery forms are
  /// "IN_SUBQUERY" / "EXISTS_SUBQUERY".
  std::string op;
  std::string qualifier;  // table or alias prefix, lower-cased; "" if bare
  std::string column;     // lower-cased column name
  std::vector<std::string> literals;  // raw literal texts (numbers/strings)
  bool literal_is_string = false;     // true if literals are string typed
};

/// An equi-join condition `left = right` between two column references.
struct JoinCondition {
  std::string left_qualifier;
  std::string left_column;
  std::string right_qualifier;
  std::string right_column;
};

/// Structural summary of one (sub)query extracted by a clause-tracking scan
/// of the token stream — deliberately *not* a full parser: this is exactly
/// the kind of brittle task-specific extraction the paper argues learned
/// embeddings replace. We keep it because (a) the feature-engineered
/// baseline needs it and (b) the simulated engine costs queries from it.
struct QueryShape {
  bool is_select = false;
  std::vector<std::string> tables;  // lower-cased base-table names, in order
  std::map<std::string, std::string> alias_to_table;  // alias -> table
  std::vector<std::string> select_columns;  // lower-cased; "*" for star
  std::vector<Predicate> filters;
  std::vector<JoinCondition> joins;
  std::vector<std::string> group_by_columns;
  std::vector<std::string> order_by_columns;
  std::vector<std::string> aggregate_functions;  // SUM, AVG, ... in order
  bool has_distinct = false;
  bool has_having = false;
  bool has_limit_or_top = false;
  int set_operation_count = 0;  // UNION/INTERSECT/EXCEPT at this level
  std::vector<QueryShape> subqueries;
  size_t token_count = 0;

  /// Maximum nesting depth; a flat query has depth 1.
  int Depth() const;
  /// Total number of subqueries at any depth.
  int TotalSubqueries() const;
  /// Resolves `qualifier` to a base table: alias lookup, else the qualifier
  /// itself if it names a referenced table, else "" (caller falls back to
  /// catalog column lookup).
  std::string ResolveQualifier(const std::string& qualifier) const;
};

/// Analyzes a token stream (as produced by Lex/LexLenient).
QueryShape Analyze(const TokenList& tokens);

/// Convenience: lenient-lexes `text` under `dialect` and analyzes it.
QueryShape AnalyzeText(std::string_view text,
                       Dialect dialect = Dialect::kGeneric);

}  // namespace querc::sql

#endif  // QUERC_SQL_ANALYZER_H_
