// Reproduces Figure 3: workload runtime under indexes recommended at
// various advisor time budgets, for the full workload and for summaries
// produced with four embedders (Doc2Vec / LSTM autoencoder, each trained
// on TPC-H itself and on an unrelated Snowflake-style workload).
//
// Expected shape (paper §5.1):
//   * below ~3 minutes no method gets recommendations (flat baseline);
//   * at 3 minutes the native advisor's partial search picks a
//     misestimation-prone index and the workload gets WORSE;
//   * the summarized workloads are small enough that the advisor converges
//     (including its refinement pass) at 3 minutes and stays near-optimal;
//   * the native advisor needs ~6 minutes to reach the same point;
//   * embedders trained on the unrelated Snowflake workload still beat the
//     native advisor for most budgets (transfer learning).

#include <map>
#include <thread>

#include "bench/bench_common.h"
#include "engine/advisor.h"
#include "engine/cost_model.h"
#include "querc/summarizer.h"
#include "util/thread_pool.h"
#include "util/topology.h"

namespace querc::bench {
namespace {

std::vector<std::string> Texts(const workload::Workload& wl) {
  std::vector<std::string> texts;
  texts.reserve(wl.size());
  for (const auto& q : wl) texts.push_back(q.text);
  return texts;
}

std::vector<std::string> Summarize(
    std::shared_ptr<const embed::Embedder> embedder,
    const workload::Workload& wl, const char* label) {
  // Shared across calls: embedding the workload is the dominant cost, and
  // EmbedBatch fans it out over this pool.
  static util::ThreadPool pool(util::DefaultThreadCount());
  core::WorkloadSummarizer::Options options;
  options.elbow.k_min = 4;
  options.elbow.k_max = 48;
  options.elbow.k_step = 4;
  options.thread_pool = &pool;
  core::WorkloadSummarizer summarizer(std::move(embedder), options);
  util::Stopwatch watch;
  auto summary = summarizer.Summarize(wl);
  std::printf("  summary %-18s K=%-3zu (%zu witnesses) in %5.1fs\n", label,
              summary.chosen_k, summary.queries.size(),
              watch.ElapsedSeconds());
  return Texts(summary.queries);
}

int Main() {
  std::printf("=== Figure 3: workload runtime vs advisor time budget ===\n");
  workload::Workload tpch = TpchWorkload();
  workload::Workload snowflake = SnowflakePretrainCorpus();
  std::vector<std::string> full = Texts(tpch);
  std::printf("TPC-H workload: %zu queries; Snowflake corpus: %zu queries\n",
              tpch.size(), snowflake.size());

  // Four embedders: {doc2vec, lstm} x {TPC-H, Snowflake}.
  auto d2v_tpch = std::make_shared<embed::Doc2VecEmbedder>(Doc2VecBenchOptions());
  auto lstm_tpch =
      std::make_shared<embed::LstmAutoencoderEmbedder>(LstmBenchOptions());
  auto d2v_snow = std::make_shared<embed::Doc2VecEmbedder>(Doc2VecBenchOptions());
  auto lstm_snow =
      std::make_shared<embed::LstmAutoencoderEmbedder>(LstmBenchOptions());
  TrainEmbedder(*d2v_tpch, tpch, "doc2vecTPCH");
  TrainEmbedder(*lstm_tpch, tpch, "lstmTPCH");
  TrainEmbedder(*d2v_snow, snowflake, "doc2vecSnowflake");
  TrainEmbedder(*lstm_snow, snowflake, "lstmSnowflake");

  std::map<std::string, std::vector<std::string>> methods;
  methods["full-workload"] = full;
  methods["doc2vecTPCH"] = Summarize(d2v_tpch, tpch, "doc2vecTPCH");
  methods["lstmTPCH"] = Summarize(lstm_tpch, tpch, "lstmTPCH");
  methods["doc2vecSnowflake"] = Summarize(d2v_snow, tpch, "doc2vecSnowflake");
  methods["lstmSnowflake"] = Summarize(lstm_snow, tpch, "lstmSnowflake");

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  double baseline = engine::RunWorkload(model, full, {}).total_seconds;
  std::printf("\nno-index baseline runtime: %.1f simulated seconds\n",
              baseline);

  const std::vector<std::string> method_order = {
      "full-workload", "doc2vecTPCH", "lstmTPCH", "doc2vecSnowflake",
      "lstmSnowflake"};
  std::vector<std::string> header = {"budget_min"};
  for (const auto& m : method_order) header.push_back(m);
  util::TableWriter table(header);

  for (double budget : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0}) {
    std::vector<std::string> row = {util::TableWriter::Num(budget, 0)};
    for (const auto& name : method_order) {
      engine::AdvisorOptions options;
      options.budget_minutes = budget;
      engine::TuningAdvisor advisor(&model, options);
      auto rec = advisor.Recommend(methods[name]);
      double runtime =
          engine::RunWorkload(model, full, rec.config).total_seconds;
      row.push_back(util::TableWriter::Num(runtime, 1));
    }
    table.AddRow(std::move(row));
  }

  EmitTable(table,
            "Figure 3 — full-workload runtime (simulated s) after building "
            "the indexes each method's advisor run recommends",
            "fig3_index_selection.csv");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
