file(REMOVE_RECURSE
  "CMakeFiles/test_embed_doc2vec.dir/test_embed_doc2vec.cc.o"
  "CMakeFiles/test_embed_doc2vec.dir/test_embed_doc2vec.cc.o.d"
  "test_embed_doc2vec"
  "test_embed_doc2vec.pdb"
  "test_embed_doc2vec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_doc2vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
