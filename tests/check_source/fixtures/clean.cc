// Fixture: conforming service code — util::Mutex wrappers, a thread
// spawned through util::SpawnThread and joined, Locked-suffixed helper.
// Must produce zero findings.
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/topology.h"

namespace fixture {

class GoodCounter {
 public:
  void Add(int n) {
    querc::util::MutexLock lock(&mu_);
    AddLocked(n);
  }

  void RunOnce() {
    std::thread worker =
        querc::util::SpawnThread("fixture", [this] { Add(1); });
    worker.join();
  }

 private:
  void AddLocked(int n) REQUIRES(mu_) { total_ += n; }

  querc::util::Mutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
