#include "util/topology.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace querc::util {

namespace {

/// Reads one small sysfs file into `out`; false if unreadable.
bool ReadSysfsFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return in.good() || in.eof();
}

/// Parses a whole non-negative integer out of `s` (leading whitespace
/// ok); false on anything else.
bool ParseInt(const std::string& s, int* out) {
  const char* p = s.c_str();
  char* end = nullptr;
  long v = std::strtol(p, &end, 10);
  if (end == p || v < 0) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    // Trim whitespace/newlines sysfs appends.
    while (!item.empty() && (item.back() == '\n' || item.back() == ' ' ||
                             item.back() == '\r')) {
      item.pop_back();
    }
    size_t start = item.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    item = item.substr(start);
    size_t dash = item.find('-');
    int lo = 0;
    int hi = 0;
    if (dash == std::string::npos) {
      if (!ParseInt(item, &lo)) continue;
      hi = lo;
    } else {
      if (!ParseInt(item.substr(0, dash), &lo) ||
          !ParseInt(item.substr(dash + 1), &hi) || hi < lo) {
        continue;
      }
    }
    // Defensive cap: a corrupt range must not allocate the universe.
    if (hi - lo > 4096) continue;
    for (int id = lo; id <= hi; ++id) cpus.push_back(id);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

size_t Topology::num_cores() const {
  std::set<std::pair<int, int>> cores;
  for (const Cpu& cpu : cpus) cores.emplace(cpu.node, cpu.core);
  return cores.size();
}

size_t Topology::num_nodes() const {
  std::set<int> nodes;
  for (const Cpu& cpu : cpus) nodes.insert(cpu.node);
  return nodes.size();
}

std::vector<int> Topology::CpusOfNode(int node) const {
  std::vector<int> out;
  for (const Cpu& cpu : cpus) {
    if (cpu.node == node) out.push_back(cpu.id);
  }
  return out;
}

Topology Topology::Flat(size_t n) {
  if (n == 0) n = 1;
  Topology topo;
  topo.cpus.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Cpu cpu;
    cpu.id = static_cast<int>(i);
    cpu.core = static_cast<int>(i);
    cpu.node = 0;
    topo.cpus.push_back(cpu);
  }
  return topo;
}

Topology Topology::Detect() {
  size_t n = std::thread::hardware_concurrency();
  Topology topo = Flat(n);  // Flat applies the 0 guard
#if defined(__linux__)
  // Core ids: cache/SMT siblings share topology/core_id. Partial reads
  // are fine — unread cpus keep their flat (unique) core id.
  for (Cpu& cpu : topo.cpus) {
    std::string text;
    if (ReadSysfsFile("/sys/devices/system/cpu/cpu" +
                          std::to_string(cpu.id) + "/topology/core_id",
                      &text)) {
      int core = 0;
      if (ParseInt(text, &core)) cpu.core = core;
    }
  }
  // NUMA nodes: nodeK/cpulist lists the logical cpus on node K. Node
  // directories can be sparse; probe a bounded range and stop caring
  // beyond it. Cpus on no listed node stay on node 0.
  for (int node = 0; node < 64; ++node) {
    std::string text;
    if (!ReadSysfsFile("/sys/devices/system/node/node" +
                           std::to_string(node) + "/cpulist",
                       &text)) {
      continue;
    }
    for (int id : ParseCpuList(text)) {
      for (Cpu& cpu : topo.cpus) {
        if (cpu.id == id) cpu.node = node;
      }
    }
  }
#endif
  return topo;
}

const Topology& Topology::System() {
  static const Topology topo = Detect();
  return topo;
}

size_t DefaultThreadCount() { return Topology::System().num_cpus(); }

bool PinCurrentThreadToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

std::thread SpawnThread(const char* name, std::function<void()> fn) {
  std::thread t(std::move(fn));
#if defined(__linux__)
  if (name != nullptr && name[0] != '\0') {
    // pthread thread names cap at 15 chars + NUL; truncate, best-effort.
    char buf[16];
    size_t i = 0;
    for (; i < sizeof(buf) - 1 && name[i] != '\0'; ++i) buf[i] = name[i];
    buf[i] = '\0';
    (void)pthread_setname_np(t.native_handle(), buf);
  }
#else
  (void)name;
#endif
  return t;
}

}  // namespace querc::util
