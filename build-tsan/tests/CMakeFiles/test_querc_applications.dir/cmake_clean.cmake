file(REMOVE_RECURSE
  "CMakeFiles/test_querc_applications.dir/test_querc_applications.cc.o"
  "CMakeFiles/test_querc_applications.dir/test_querc_applications.cc.o.d"
  "test_querc_applications"
  "test_querc_applications.pdb"
  "test_querc_applications[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_querc_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
