# Empty dependencies file for test_engine_catalog.
# This may be replaced when dependencies are built.
