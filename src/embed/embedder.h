#ifndef QUERC_EMBED_EMBEDDER_H_
#define QUERC_EMBED_EMBEDDER_H_

#include <string>
#include <vector>

#include "nn/tensor.h"
#include "sql/dialect.h"
#include "util/status.h"
#include "workload/workload.h"

namespace querc::embed {

/// Tokenizes `text` for the embedding pipeline: lenient lexing under
/// `dialect` followed by the default normalization (literals folded,
/// identifiers lower-cased).
std::vector<std::string> TokenizeForEmbedding(std::string_view text,
                                              sql::Dialect dialect);

/// The representation-learner half of a Querc classifier (§4): maps query
/// text to a fixed-length vector. Implementations: Doc2VecEmbedder,
/// LstmAutoencoderEmbedder (learned), FeatureEmbedder (hand-engineered
/// baseline).
///
/// The split between Embedder and labeler is the paper's key design move:
/// one embedder trained on a large combined workload serves many
/// application-specific labelers.
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Trains on tokenized documents (as from TokenizeForEmbedding). May be
  /// a no-op for non-learned embedders.
  virtual util::Status Train(
      const std::vector<std::vector<std::string>>& docs) = 0;

  /// Embeds one tokenized document. Valid after Train() succeeded (or
  /// immediately for non-learned embedders).
  virtual nn::Vec Embed(const std::vector<std::string>& words) const = 0;

  /// Output dimensionality.
  virtual size_t dim() const = 0;

  /// Short method name for reports ("doc2vec", "lstm", "features").
  virtual std::string name() const = 0;

  /// Convenience: tokenize + Embed.
  nn::Vec EmbedQuery(std::string_view text,
                     sql::Dialect dialect = sql::Dialect::kGeneric) const {
    return Embed(TokenizeForEmbedding(text, dialect));
  }
};

/// Tokenizes every query in `workload` (each under its own dialect).
std::vector<std::vector<std::string>> TokenizeWorkload(
    const workload::Workload& workload);

/// Trains `embedder` on the tokenized `corpus` workload.
util::Status TrainOnWorkload(Embedder& embedder,
                             const workload::Workload& corpus);

/// Embeds every query of `workload`; returns one vector per query.
std::vector<nn::Vec> EmbedWorkload(const Embedder& embedder,
                                   const workload::Workload& workload);

}  // namespace querc::embed

#endif  // QUERC_EMBED_EMBEDDER_H_
