#ifndef QUERC_SQL_LINT_ENGINE_H_
#define QUERC_SQL_LINT_ENGINE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sql/dialect.h"
#include "sql/lint/diagnostic.h"
#include "sql/lint/rule.h"

namespace querc::sql::lint {

struct LintOptions {
  /// Dialect used to lex queries that do not carry their own hint.
  Dialect dialect = Dialect::kGeneric;
  /// Distinct literal bindings of one normalized template before the
  /// unparameterized-literals rule reports a hot spot.
  size_t hot_template_threshold = 8;
  /// Number of worst templates surfaced in LintReport::top_templates.
  size_t top_templates = 5;
};

/// Per-query lint outcome: the diagnostics plus the normalized template
/// fingerprint (used by callers aggregating per-template statistics).
struct QueryLint {
  size_t query_index = 0;
  std::string fingerprint;
  std::vector<Diagnostic> diagnostics;
};

/// One offending template in the workload-level aggregation.
struct TemplateLint {
  std::string fingerprint;
  size_t instances = 0;
  size_t diagnostics = 0;
  size_t example_query = 0;  // index of one instance
};

/// Aggregate result of linting a whole workload.
struct LintReport {
  /// Every diagnostic (per-query and workload-level), sorted by
  /// (query_index, span.offset, rule_id).
  std::vector<Diagnostic> diagnostics;
  /// rule id -> number of diagnostics it produced.
  std::map<std::string, size_t> rule_hits;
  /// Worst templates by diagnostic count (ties: more instances first).
  std::vector<TemplateLint> top_templates;
  size_t total_queries = 0;

  /// Number of diagnostics with severity >= `floor`.
  size_t CountAtLeast(Severity floor) const;
};

/// Runs a RuleRegistry over queries or whole workloads. Stateless after
/// construction: every method is const and safe to call concurrently.
class LintEngine {
 public:
  explicit LintEngine(LintOptions options = {},
                      const SchemaProvider* schema = nullptr);
  LintEngine(RuleRegistry registry, LintOptions options,
             const SchemaProvider* schema = nullptr);

  /// Runs every per-query rule over one statement. `dialect` overrides the
  /// engine's default (queries arriving in a labeled stream carry their
  /// own hint).
  QueryLint LintQuery(std::string_view text, size_t query_index,
                      Dialect dialect) const;
  QueryLint LintQuery(std::string_view text, size_t query_index = 0) const {
    return LintQuery(text, query_index, options_.dialect);
  }

  /// Lints a batch: per-query rules on each text, then workload-level
  /// rules over the template map, then aggregation.
  LintReport LintTexts(const std::vector<std::string>& texts) const;

  const RuleRegistry& registry() const { return registry_; }
  const LintOptions& options() const { return options_; }
  const SchemaProvider* schema() const { return schema_; }

 private:
  RuleRegistry registry_;
  LintOptions options_;
  const SchemaProvider* schema_;
};

}  // namespace querc::sql::lint

#endif  // QUERC_SQL_LINT_ENGINE_H_
