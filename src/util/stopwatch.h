#ifndef QUERC_UTIL_STOPWATCH_H_
#define QUERC_UTIL_STOPWATCH_H_

#include <chrono>

namespace querc::util {

/// Wall-clock stopwatch for instrumentation (real time, not simulated time;
/// the engine's simulated runtimes live in `engine/`).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_STOPWATCH_H_
