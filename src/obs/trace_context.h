#ifndef QUERC_OBS_TRACE_CONTEXT_H_
#define QUERC_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace querc::obs {

/// The propagatable identity of one logical request: a 64-bit trace id
/// shared by every span the request touches (across threads), plus the
/// span id of the innermost enclosing span on *this* thread. Contexts are
/// plain values — capture one with `CurrentContext()` before handing work
/// to another thread, adopt it there with `ScopedTraceContext`, and every
/// flight-recorder event emitted inside the scope carries the same trace
/// id, so the cross-thread journal reassembles into one per-query trace.
///
/// trace_id == 0 means "no active trace" (the invalid/empty context); ids
/// from NewTraceId()/NewSpanId() are never 0.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// The context installed on this thread, or the invalid context.
TraceContext CurrentContext();

/// Installs `ctx` as this thread's context and returns the one it
/// displaced. Low-level hook for scope objects that must survive beyond a
/// single block (obs::Trace); everyone else should use ScopedTraceContext.
TraceContext InstallContext(const TraceContext& ctx);

/// Process-unique non-zero ids: an atomic counter pushed through a
/// splitmix64-style mixer, so ids are cheap (one relaxed fetch_add), never
/// collide within a process, and scatter uniformly (usable as hash keys).
uint64_t NewTraceId();
uint64_t NewSpanId();

/// RAII adoption: installs `ctx` as this thread's current context for the
/// scope and restores the previous context on destruction. Adopting an
/// invalid context clears the slot (work explicitly detached from any
/// trace). Scopes nest; each restores exactly what it displaced.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

}  // namespace querc::obs

#endif  // QUERC_OBS_TRACE_CONTEXT_H_
