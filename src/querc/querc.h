#ifndef QUERC_QUERC_QUERC_H_
#define QUERC_QUERC_QUERC_H_

/// Umbrella header for the Querc database-agnostic workload management
/// service: include this to get the whole public API.
///
/// Layering (bottom-up):
///   util/     -- Status, RNG, tables, threading
///   sql/      -- dialect-aware lexing, normalization, structural analysis
///   nn/       -- tensors, optimizers, LSTM, losses (from scratch)
///   embed/    -- Doc2Vec / LSTM-autoencoder / feature-engineered embedders
///   ml/       -- k-means (+elbow), k-medoids, random forests, kNN, CV
///   engine/   -- simulated relational engine: catalog, cost model, advisor
///   workload/ -- data model + TPC-H and Snowflake-style generators
///   querc/    -- the service: classifiers, QWorkers, training module,
///                and the applications from the paper's §4/§5

#include "embed/doc2vec.h"
#include "embed/embedder.h"
#include "embed/feature_embedder.h"
#include "embed/lstm_autoencoder.h"
#include "querc/chaos.h"
#include "querc/classifier.h"
#include "querc/error_predictor.h"
#include "querc/qworker.h"
#include "querc/qworker_pool.h"
#include "querc/drift.h"
#include "querc/recommender.h"
#include "querc/resilience.h"
#include "querc/resource_allocator.h"
#include "querc/routing.h"
#include "querc/security_audit.h"
#include "querc/summarizer.h"
#include "querc/training_module.h"
#include "workload/snowflake_gen.h"
#include "workload/tpch_gen.h"
#include "workload/workload.h"

#endif  // QUERC_QUERC_QUERC_H_
