#ifndef QUERC_ENGINE_INDEX_H_
#define QUERC_ENGINE_INDEX_H_

#include <string>
#include <vector>

namespace querc::engine {

/// A (simulated) secondary B-tree index: `table(key_columns...)`.
struct Index {
  std::string table;
  std::vector<std::string> key_columns;

  /// "table(col1,col2)" — stable identity string.
  std::string ToString() const;

  friend bool operator==(const Index& a, const Index& b) {
    return a.table == b.table && a.key_columns == b.key_columns;
  }
};

/// A set of indexes the engine plans against.
using IndexConfig = std::vector<Index>;

/// True if `config` contains `index`.
bool ContainsIndex(const IndexConfig& config, const Index& index);

/// Renders the whole configuration ("{a(x), b(y,z)}").
std::string ConfigToString(const IndexConfig& config);

class Catalog;  // engine/catalog.h

/// Estimated on-disk size of `index` in MB: rows x (key widths + rowid).
/// Returns 0 for unknown tables/columns.
double IndexSizeMb(const Catalog& catalog, const Index& index);

/// Total size of a configuration in MB.
double ConfigSizeMb(const Catalog& catalog, const IndexConfig& config);

}  // namespace querc::engine

#endif  // QUERC_ENGINE_INDEX_H_
