// Measures the template-keyed embedding cache on the seed workloads:
// cold (every query runs full Doc2Vec inference) vs warm (every template
// resident) throughput, plus the hit ratio a replayed workload achieves.
// Also proves the cache is pure memoization: cached vectors are compared
// bit-for-bit against freshly computed ones.
//
// Every bench_-prefixed metric is exported to BENCH_embed.json (see
// --out). With --smoke the workloads are truncated for a CI sanity run
// and the process fails unless the warm pass is ≥ 5x cold with a high
// hit ratio — wired into tools/verify_matrix.sh.

#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "embed/embed_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace querc::bench {
namespace {

struct WorkloadResult {
  double cold_qps = 0.0;
  double warm_qps = 0.0;
  double hit_ratio = 0.0;
  bool bit_identical = true;
};

WorkloadResult RunOne(const embed::Embedder& embedder,
                      const workload::Workload& wl, const char* label) {
  std::vector<std::vector<std::string>> docs = embed::TokenizeWorkload(wl);

  // Cold: direct inference for every query, no cache anywhere.
  util::Stopwatch watch;
  std::vector<nn::Vec> direct;
  direct.reserve(docs.size());
  for (const auto& doc : docs) direct.push_back(embedder.Embed(doc));
  double cold_s = watch.ElapsedSeconds();

  // First replay populates the cache (misses for distinct templates,
  // hits for repeats); second replay is the warm measurement.
  embed::EmbeddingCache cache(embed::EmbeddingCache::Options{});
  std::vector<std::string> keys;
  keys.reserve(docs.size());
  for (const auto& doc : docs) {
    keys.push_back(embed::EmbeddingCache::KeyFor(embedder, doc));
  }
  WorkloadResult result;
  for (size_t i = 0; i < docs.size(); ++i) {
    auto cached =
        cache.GetOrCompute(keys[i], [&] { return embedder.Embed(docs[i]); });
    // Pure memoization: the cached vector must equal direct recomputation
    // bit for bit (same key => same Embed() input => same output).
    if (*cached != direct[i]) result.bit_identical = false;
  }
  // Within-workload hit ratio: repeats of the same template during one
  // cold replay (the "dominant shape of real workloads" effect).
  double first_pass_hit_ratio = cache.Stats().hit_ratio();

  embed::EmbedCacheStats before = cache.Stats();
  watch.Reset();
  for (size_t i = 0; i < docs.size(); ++i) {
    auto cached =
        cache.GetOrCompute(keys[i], [&] { return embedder.Embed(docs[i]); });
    if (cached->size() != embedder.dim()) result.bit_identical = false;
  }
  double warm_s = watch.ElapsedSeconds();
  embed::EmbedCacheStats after = cache.Stats();
  uint64_t replay_lookups = after.lookups() - before.lookups();
  result.hit_ratio =
      replay_lookups == 0
          ? 0.0
          : static_cast<double>(after.hits - before.hits) /
                static_cast<double>(replay_lookups);

  double n = static_cast<double>(docs.size());
  result.cold_qps = n / std::max(cold_s, 1e-9);
  result.warm_qps = n / std::max(warm_s, 1e-9);

  obs::Labels labels = {{"workload", label}};
  auto& registry = obs::MetricsRegistry::Global();
  registry
      .GetGauge("bench_embed_cold_qps", labels,
                "Uncached Doc2Vec inference throughput, queries/second")
      .Set(result.cold_qps);
  registry
      .GetGauge("bench_embed_warm_qps", labels,
                "Warm-cache embedding throughput, queries/second")
      .Set(result.warm_qps);
  registry
      .GetGauge("bench_embed_speedup", labels,
                "warm_qps / cold_qps on the replayed workload")
      .Set(result.warm_qps / std::max(result.cold_qps, 1e-9));
  registry
      .GetGauge("bench_embed_hit_ratio", labels,
                "Cache hit ratio replaying an already-seen workload")
      .Set(result.hit_ratio);
  registry
      .GetGauge("bench_embed_first_pass_hit_ratio", labels,
                "Hit ratio during the first (populating) pass: repeated "
                "templates within one workload")
      .Set(first_pass_hit_ratio);
  registry
      .GetGauge("bench_embed_bit_identical", labels,
                "1 when every cached vector matched direct inference "
                "bit-for-bit")
      .Set(result.bit_identical ? 1.0 : 0.0);

  std::printf("  %-10s %6zu queries  cold %8.1f qps  warm %10.1f qps "
              "(%.0fx)  replay hit ratio %.3f  bit-identical %s\n",
              label, wl.size(), result.cold_qps, result.warm_qps,
              result.warm_qps / std::max(result.cold_qps, 1e-9),
              result.hit_ratio, result.bit_identical ? "yes" : "NO");
  return result;
}

workload::Workload Truncate(const workload::Workload& wl, size_t n) {
  workload::Workload out;
  for (size_t i = 0; i < wl.size() && i < n; ++i) out.Add(wl[i]);
  return out;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_embed.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_embed_cache [--smoke] [--out FILE]\n");
      return 2;
    }
  }

  std::printf("=== Embedding cache: cold vs warm throughput ===\n");
  workload::Workload tpch = TpchWorkload();
  workload::Workload snowflake = SnowflakeLabeledWorkload();
  if (smoke) {
    tpch = Truncate(tpch, 60);
    snowflake = Truncate(snowflake, 60);
  }

  embed::Doc2VecEmbedder embedder(Doc2VecBenchOptions());
  workload::Workload corpus = tpch;
  corpus.Append(snowflake);
  TrainEmbedder(embedder, corpus, "doc2vec");

  WorkloadResult t = RunOne(embedder, tpch, "tpch");
  WorkloadResult s = RunOne(embedder, snowflake, "snowflake");

  std::string json =
      obs::ExportJson(obs::MetricsRegistry::Global(), "bench_");
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!t.bit_identical || !s.bit_identical) {
    std::fprintf(stderr, "FAIL: cached vectors diverged from direct "
                         "inference\n");
    return 1;
  }
  if (smoke) {
    // Sanity gates for the verify_matrix stage: the warm pass must be a
    // large win and a full replay of an already-seen workload must hit.
    bool ok = true;
    for (const WorkloadResult* r : {&t, &s}) {
      if (r->warm_qps < 5.0 * r->cold_qps) {
        std::fprintf(stderr, "FAIL: warm qps < 5x cold qps\n");
        ok = false;
      }
      if (r->hit_ratio < 0.9) {
        std::fprintf(stderr, "FAIL: replay hit ratio %.3f < 0.9\n",
                     r->hit_ratio);
        ok = false;
      }
    }
    if (!ok) return 1;
    std::printf("smoke OK\n");
  }
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main(int argc, char** argv) { return querc::bench::Main(argc, argv); }
