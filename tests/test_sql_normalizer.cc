#include "sql/normalizer.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace querc::sql {
namespace {

std::vector<std::string> NormalizeText(std::string_view text,
                                       const NormalizeOptions& options = {}) {
  return Normalize(LexLenient(text), options);
}

TEST(NormalizerTest, FoldsLiterals) {
  auto words = NormalizeText("SELECT a FROM t WHERE b = 5 AND c = 'x'");
  std::vector<std::string> expected = {"SELECT", "a", "FROM",  "t",
                                       "WHERE",  "b", "=",     kNumberPlaceholder,
                                       "AND",    "c", "=",     kStringPlaceholder};
  EXPECT_EQ(words, expected);
}

TEST(NormalizerTest, LowercasesIdentifiersButNotKeywords) {
  auto words = NormalizeText("SELECT MyCol FROM MyTable");
  EXPECT_EQ(words[0], "SELECT");
  EXPECT_EQ(words[1], "mycol");
  EXPECT_EQ(words[3], "mytable");
}

TEST(NormalizerTest, OptionsDisableFolding) {
  NormalizeOptions options;
  options.fold_literals = false;
  auto words = NormalizeText("SELECT 42", options);
  EXPECT_EQ(words[1], "42");
}

TEST(NormalizerTest, OptionsPreserveIdentifierCase) {
  NormalizeOptions options;
  options.lowercase_identifiers = false;
  auto words = NormalizeText("SELECT MyCol", options);
  EXPECT_EQ(words[1], "MyCol");
}

TEST(NormalizerTest, ParametersFold) {
  auto words = NormalizeText("WHERE a = ?");
  EXPECT_EQ(words.back(), kParamPlaceholder);
}

TEST(NormalizerTest, CommentsStripped) {
  LexOptions lex;
  lex.keep_comments = true;
  auto tokens = LexLenient("SELECT 1 -- note", lex);
  auto words = Normalize(tokens);
  EXPECT_EQ(words.size(), 2u);
  NormalizeOptions keep;
  keep.strip_comments = false;
  EXPECT_EQ(Normalize(tokens, keep).size(), 3u);
}

TEST(NormalizerTest, ParameterInstancesShareFingerprint) {
  // The fingerprint property the workload-dedup logic relies on: two
  // instances of one template differing only in literals normalize
  // identically.
  std::string a = "SELECT x FROM t WHERE d >= '1994-01-01' AND q < 24";
  std::string b = "SELECT x FROM t WHERE d >= '1997-06-15' AND q < 7";
  EXPECT_EQ(NormalizedText(LexLenient(a)), NormalizedText(LexLenient(b)));
}

TEST(NormalizerTest, NegativeLiteralSharesFingerprintWithPositive) {
  // The lexer emits `-5` as operator '-' + number 5; the unary sign must
  // fold into <num> so signed bindings of one template coincide.
  std::string a = "SELECT x FROM t WHERE q < -5";
  std::string b = "SELECT x FROM t WHERE q < 5";
  EXPECT_EQ(NormalizedText(LexLenient(a)), NormalizedText(LexLenient(b)));
  auto words = NormalizeText("WHERE q < -5");
  std::vector<std::string> expected = {"WHERE", "q", "<", kNumberPlaceholder};
  EXPECT_EQ(words, expected);
}

TEST(NormalizerTest, UnarySignFoldsAfterCommaParenAndKeyword) {
  EXPECT_EQ(NormalizedText(LexLenient("IN (-1, -2, +3)")),
            NormalizedText(LexLenient("IN (1, 2, 3)")));
  EXPECT_EQ(NormalizedText(LexLenient("BETWEEN -5 AND -1")),
            NormalizedText(LexLenient("BETWEEN 5 AND 1")));
}

TEST(NormalizerTest, BinaryMinusIsNotFolded) {
  // `a - 5` is subtraction; folding the '-' would merge structurally
  // different templates.
  auto words = NormalizeText("SELECT a - 5 FROM t");
  std::vector<std::string> expected = {"SELECT", "a", "-", kNumberPlaceholder,
                                       "FROM", "t"};
  EXPECT_EQ(words, expected);
  // Same after a closing paren: `(a + b) - 5` stays binary.
  auto paren = NormalizeText("SELECT (a + b) - 5 FROM t");
  EXPECT_EQ(paren[6], "-");
}

TEST(NormalizerTest, UnfoldedStringsAreRequoted) {
  NormalizeOptions options;
  options.fold_literals = false;
  auto words = NormalizeText("SELECT 'x'", options);
  EXPECT_EQ(words[1], "'x'");
  // An embedded quote the lexer unescaped must be re-escaped so the
  // normalized text stays lexable.
  auto escaped = NormalizeText("SELECT 'O''Brien'", options);
  EXPECT_EQ(escaped[1], "'O''Brien'");
}

TEST(NormalizerTest, EscapedQuoteStringsFoldConsistently) {
  EXPECT_EQ(NormalizedText(LexLenient("WHERE n = 'O''Brien'")),
            NormalizedText(LexLenient("WHERE n = 'Smith'")));
}

TEST(NormalizerTest, DifferentStructureDifferentFingerprint) {
  std::string a = "SELECT x FROM t WHERE q < 24";
  std::string b = "SELECT x FROM t WHERE q > 24";
  EXPECT_NE(NormalizedText(LexLenient(a)), NormalizedText(LexLenient(b)));
}

}  // namespace
}  // namespace querc::sql
