# Empty dependencies file for test_util_thread_pool.
# This may be replaced when dependencies are built.
