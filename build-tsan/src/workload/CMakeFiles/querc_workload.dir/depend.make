# Empty dependencies file for querc_workload.
# This may be replaced when dependencies are built.
