# Empty dependencies file for querc_nn.
# This may be replaced when dependencies are built.
