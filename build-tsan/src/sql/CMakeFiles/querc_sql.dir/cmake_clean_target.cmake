file(REMOVE_RECURSE
  "libquerc_sql.a"
)
