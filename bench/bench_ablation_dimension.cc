// Ablation A3 — sensitivity to embedding dimensionality: sweeps the
// Doc2Vec vector size over the Table-1 account task and the Figure-3
// summarization task. The paper fixes one dimension per method; this
// ablation shows the results are not knife-edge in that choice.

#include <memory>

#include "bench/bench_common.h"
#include "engine/advisor.h"
#include "engine/cost_model.h"
#include "ml/crossval.h"
#include "ml/random_forest.h"
#include "querc/summarizer.h"

namespace querc::bench {
namespace {

int Main() {
  std::printf("=== Ablation: embedding dimension sweep (Doc2Vec) ===\n");
  workload::Workload tpch = TpchWorkload();
  workload::Workload labeled = SnowflakeLabeledWorkload();
  std::vector<std::string> full;
  for (const auto& q : tpch) full.push_back(q.text);

  engine::Catalog catalog = engine::TpchCatalog();
  engine::CostModel model(&catalog);
  double baseline = engine::RunWorkload(model, full, {}).total_seconds;
  std::printf("TPC-H no-index baseline: %.1fs\n", baseline);

  util::TableWriter table({"dim", "account_acc", "summary_k",
                           "tpch_runtime_3min_s"});
  for (size_t dim : {4, 8, 16, 32, 48}) {
    embed::Doc2VecEmbedder::Options options = Doc2VecBenchOptions();
    options.dim = dim;
    auto embedder = std::make_shared<embed::Doc2VecEmbedder>(options);

    // Account labeling at this dimension (embedder trained on the labeled
    // workload itself for this sweep; 3 folds keeps the sweep fast).
    (void)embed::TrainOnWorkload(*embedder, labeled);
    ml::Dataset data;
    data.x = embed::EmbedWorkload(*embedder, labeled);
    ml::LabelEncoder accounts;
    for (const auto& q : labeled) data.y.push_back(accounts.FitId(q.account));
    double account_acc =
        ml::StratifiedKFold(data, 3,
                            [] {
                              return std::make_unique<
                                  ml::RandomForestClassifier>(
                                  ml::RandomForestClassifier::Options{
                                      .num_trees = 25});
                            },
                            501)
            .MeanAccuracy();

    // Summarization quality at this dimension.
    auto tpch_embedder = std::make_shared<embed::Doc2VecEmbedder>(options);
    (void)embed::TrainOnWorkload(*tpch_embedder, tpch);
    core::WorkloadSummarizer::Options sopt;
    sopt.elbow.k_min = 4;
    sopt.elbow.k_max = 48;
    sopt.elbow.k_step = 4;
    core::WorkloadSummarizer summarizer(tpch_embedder, sopt);
    auto summary = summarizer.Summarize(tpch);
    std::vector<std::string> texts;
    for (const auto& q : summary.queries) texts.push_back(q.text);
    engine::AdvisorOptions aopt;
    aopt.budget_minutes = 3.0;
    engine::TuningAdvisor advisor(&model, aopt);
    auto rec = advisor.Recommend(texts);
    double runtime = engine::RunWorkload(model, full, rec.config).total_seconds;

    table.AddRow({std::to_string(dim),
                  util::TableWriter::Num(100.0 * account_acc, 1) + "%",
                  std::to_string(summary.queries.size()),
                  util::TableWriter::Num(runtime, 1)});
    std::printf("  dim %2zu done\n", dim);
  }
  EmitTable(table, "Ablation A3 — Doc2Vec dimension sweep",
            "ablation_dimension.csv");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main() { return querc::bench::Main(); }
