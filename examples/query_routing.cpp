// Scenario: routing-policy checking and resource hints (paper §4). A
// multi-tenant service routes each account's queries to a cluster per a
// manually-encoded policy. Querc learns the policy from history, then
// (a) flags queries whose recorded cluster contradicts it and (b) attaches
// coarse resource buckets so the scheduler can place queries before
// running them. An error predictor routes risky queries defensively.
//
// Build & run:  ./build/examples/query_routing

#include <cstdio>
#include <memory>

#include "querc/querc.h"

int main() {
  using namespace querc;

  workload::SnowflakeGenerator::Options gen_options;
  gen_options.seed = 7;
  gen_options.num_clusters = 3;
  gen_options.accounts =
      workload::SnowflakeGenerator::UniformAccounts(/*num_accounts=*/6,
                                                    /*queries_per_account=*/400,
                                                    /*users_per_account=*/4);
  workload::Workload all =
      workload::SnowflakeGenerator(gen_options).Generate();
  size_t split = all.size() * 4 / 5;
  workload::Workload history(
      {all.queries().begin(), all.queries().begin() + split});
  workload::Workload batch(
      {all.queries().begin() + split, all.queries().end()});

  auto embedder = std::make_shared<embed::Doc2VecEmbedder>([&] {
    embed::Doc2VecEmbedder::Options options;
    options.dim = 24;
    options.epochs = 8;
    return options;
  }());
  util::Status status = embed::TrainOnWorkload(*embedder, history);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // --- routing policy checker ---
  core::RoutingPolicyChecker checker(embedder, {});
  if (!checker.Train(history).ok()) return 1;

  // Misconfigure: 10 queries of the first account get recorded on the
  // wrong cluster (a stale policy entry).
  int corrupted = 0;
  for (auto& q : batch.queries()) {
    if (corrupted < 10 && q.account == "train00") {
      q.cluster = "cluster2";  // policy says train00 -> cluster0
      ++corrupted;
    }
  }
  auto misroutings = checker.Check(batch);
  int caught = 0;
  for (const auto& m : misroutings) {
    caught += batch[m.query_index].account == "train00" &&
                      m.assigned_cluster == "cluster2"
                  ? 1
                  : 0;
  }
  std::printf("routing check: %d corrupted assignments, %zu flags, %d "
              "correct catches\n",
              corrupted, misroutings.size(), caught);

  // --- resource allocation hints ---
  core::ResourceAllocator allocator(embedder, {});
  if (!allocator.Train(history).ok()) return 1;
  std::printf("\nresource hints for the first few queries:\n");
  for (size_t i = 0; i < 5; ++i) {
    auto hint = allocator.Allocate(batch[i]);
    std::printf("  runtime=%-6s memory=%-6s grant=%.0fMB  %.60s...\n",
                core::ResourceAllocator::BucketName(hint.runtime_bucket),
                core::ResourceAllocator::BucketName(hint.memory_bucket),
                hint.suggested_memory_mb, batch[i].text.c_str());
  }

  // --- error prediction / defensive routing ---
  core::ErrorPredictor predictor(embedder, {});
  if (!predictor.Train(history).ok()) return 1;
  int defensive = 0;
  int actual_errors = 0;
  int caught_errors = 0;
  for (const auto& q : batch) {
    bool risky = predictor.ShouldRouteDefensively(q);
    defensive += risky ? 1 : 0;
    if (!q.error_code.empty()) {
      ++actual_errors;
      caught_errors += risky ? 1 : 0;
    }
  }
  std::printf("\nerror prediction: %d/%zu queries routed defensively; "
              "%d/%d actual failures were pre-flagged\n",
              defensive, batch.size(), caught_errors, actual_errors);
  return 0;
}
