#include "querc/training_module.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "embed/feature_embedder.h"
#include "ml/knn.h"

namespace querc::core {
namespace {

workload::LabeledQuery Query(const std::string& text, const std::string& user,
                             const std::string& cluster = "c0") {
  workload::LabeledQuery q;
  q.text = text;
  q.user = user;
  q.cluster = cluster;
  return q;
}

workload::Workload History() {
  workload::Workload wl;
  for (int i = 0; i < 8; ++i) {
    wl.Add(Query("SELECT a FROM t WHERE x = 1", "alice", "c0"));
    wl.Add(Query("SELECT b, c, d FROM u, v WHERE u.k = v.k", "bob", "c1"));
  }
  return wl;
}

std::shared_ptr<const embed::Embedder> FeatureEmbedderPtr() {
  return std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
}

TEST(TrainingModuleTest, CollectAccumulates) {
  TrainingModule module({});
  ProcessedQuery pq;
  pq.query = Query("SELECT 1", "u");
  module.Collect("appX", pq);
  module.Collect("appX", pq);
  module.Collect("appY", pq);
  EXPECT_EQ(module.TrainingSet("appX").size(), 2u);
  EXPECT_EQ(module.TrainingSet("appY").size(), 1u);
  EXPECT_EQ(module.TrainingSet("missing").size(), 0u);
}

TEST(TrainingModuleTest, TrainingSetIsASnapshotNotALiveReference) {
  // Regression: TrainingSet used to return a const& into the guarded
  // map, so a caller's "snapshot" mutated (and could reallocate out from
  // under it) as concurrent Collect calls landed. It now returns a copy
  // taken under the lock.
  TrainingModule module({});
  ProcessedQuery pq;
  pq.query = Query("SELECT 1", "u");
  module.Collect("appX", pq);
  workload::Workload snapshot = module.TrainingSet("appX");
  ASSERT_EQ(snapshot.size(), 1u);
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&module, &pq] {
      for (int i = 0; i < 500; ++i) module.Collect("appX", pq);
    });
  }
  // Reading the snapshot while writers mutate the live set is safe (and
  // TSan-clean) precisely because it is a copy.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(snapshot.size(), 1u);
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(module.TrainingSet("appX").size(), 2001u);
}

TEST(TrainingModuleTest, CollectCapsRetention) {
  TrainingModule::Options options;
  options.max_queries_per_application = 10;
  TrainingModule module(options);
  ProcessedQuery pq;
  pq.query = Query("SELECT 1", "u");
  for (int i = 0; i < 25; ++i) module.Collect("appX", pq);
  EXPECT_LE(module.TrainingSet("appX").size(), 10u);
}

TEST(TrainingModuleTest, EmbedderRegistry) {
  TrainingModule module({});
  EXPECT_EQ(module.Embedder("shared"), nullptr);
  module.RegisterEmbedder("shared", FeatureEmbedderPtr());
  EXPECT_NE(module.Embedder("shared"), nullptr);
}

TEST(TrainingModuleTest, TrainProducesWorkingModel) {
  TrainingModule module({});
  module.RegisterEmbedder("shared", FeatureEmbedderPtr());
  module.ImportLogs("appX", History());

  TrainingModule::TrainJob job;
  job.task_name = "user";
  job.application = "appX";
  job.embedder_name = "shared";
  job.label_of = workload::UserOf;
  job.labeler_factory = [] {
    return std::make_unique<ml::KnnClassifier>(
        ml::KnnClassifier::Options{.k = 1});
  };
  auto result = module.Train(job);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->Predict(Query("SELECT a FROM t WHERE x = 7", "?")),
            "alice");
  // Registered in the model registry.
  EXPECT_NE(module.Model("user"), nullptr);
  EXPECT_EQ(module.Model("nope"), nullptr);
}

TEST(TrainingModuleTest, TrainFailsWithoutEmbedderOrData) {
  TrainingModule module({});
  TrainingModule::TrainJob job;
  job.task_name = "user";
  job.application = "appX";
  job.embedder_name = "missing";
  job.label_of = workload::UserOf;
  EXPECT_EQ(module.Train(job).status().code(), util::StatusCode::kNotFound);

  module.RegisterEmbedder("shared", FeatureEmbedderPtr());
  job.embedder_name = "shared";
  EXPECT_EQ(module.Train(job).status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(TrainingModuleTest, TrainAndDeployParallelJobs) {
  TrainingModule module({});
  module.RegisterEmbedder("shared", FeatureEmbedderPtr());
  module.ImportLogs("appX", History());

  auto knn_factory = [] {
    return std::make_unique<ml::KnnClassifier>(
        ml::KnnClassifier::Options{.k = 1});
  };
  TrainingModule::TrainJob user_job;
  user_job.task_name = "user";
  user_job.application = "appX";
  user_job.embedder_name = "shared";
  user_job.label_of = workload::UserOf;
  user_job.labeler_factory = knn_factory;
  TrainingModule::TrainJob cluster_job = user_job;
  cluster_job.task_name = "cluster";
  cluster_job.label_of = workload::ClusterOf;

  QWorker::Options wopts;
  wopts.application = "appX";
  QWorker worker(wopts);
  ASSERT_TRUE(module.TrainAndDeploy({user_job, cluster_job}, worker).ok());
  EXPECT_EQ(worker.num_classifiers(), 2u);

  ProcessedQuery out = worker.Process(Query("SELECT a FROM t WHERE x = 2", "?"));
  EXPECT_EQ(out.predictions.at("user"), "alice");
  EXPECT_EQ(out.predictions.at("cluster"), "c0");
}

TEST(TrainingModuleTest, TrainAndDeployPropagatesError) {
  TrainingModule module({});
  module.RegisterEmbedder("shared", FeatureEmbedderPtr());
  // No training data imported.
  TrainingModule::TrainJob job;
  job.task_name = "user";
  job.application = "appX";
  job.embedder_name = "shared";
  job.label_of = workload::UserOf;
  QWorker::Options wopts;
  wopts.application = "appX";
  QWorker worker(wopts);
  EXPECT_FALSE(module.TrainAndDeploy({job}, worker).ok());
  EXPECT_EQ(worker.num_classifiers(), 0u);
}

TEST(TrainingModuleTest, DefaultLabelerIsRandomForest) {
  TrainingModule module({});
  module.RegisterEmbedder("shared", FeatureEmbedderPtr());
  module.ImportLogs("appX", History());
  TrainingModule::TrainJob job;
  job.task_name = "user";
  job.application = "appX";
  job.embedder_name = "shared";
  job.label_of = workload::UserOf;
  // No labeler_factory: default to the paper's randomized decision trees.
  auto result = module.Train(job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->Predict(Query("SELECT a FROM t WHERE x = 4", "?")),
            "alice");
}

}  // namespace
}  // namespace querc::core
