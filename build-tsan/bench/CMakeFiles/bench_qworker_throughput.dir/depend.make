# Empty dependencies file for bench_qworker_throughput.
# This may be replaced when dependencies are built.
