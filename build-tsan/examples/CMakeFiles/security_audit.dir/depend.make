# Empty dependencies file for security_audit.
# This may be replaced when dependencies are built.
