file(REMOVE_RECURSE
  "CMakeFiles/test_embed_tfidf.dir/test_embed_tfidf.cc.o"
  "CMakeFiles/test_embed_tfidf.dir/test_embed_tfidf.cc.o.d"
  "test_embed_tfidf"
  "test_embed_tfidf.pdb"
  "test_embed_tfidf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_tfidf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
