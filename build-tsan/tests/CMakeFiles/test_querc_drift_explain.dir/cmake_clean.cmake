file(REMOVE_RECURSE
  "CMakeFiles/test_querc_drift_explain.dir/test_querc_drift_explain.cc.o"
  "CMakeFiles/test_querc_drift_explain.dir/test_querc_drift_explain.cc.o.d"
  "test_querc_drift_explain"
  "test_querc_drift_explain.pdb"
  "test_querc_drift_explain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_querc_drift_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
