# Empty dependencies file for test_sql_lexer.
# This may be replaced when dependencies are built.
