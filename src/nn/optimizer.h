#ifndef QUERC_NN_OPTIMIZER_H_
#define QUERC_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace querc::nn {

/// Interface for optimizers that update a fixed set of registered Tensors
/// from their accumulated gradients, then zero the gradients.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers a parameter tensor. Must happen before the first Step();
  /// the tensor must outlive the optimizer.
  virtual void Register(Tensor* tensor) = 0;

  /// Applies one update from the accumulated gradients and zeroes them.
  virtual void Step() = 0;

  /// Current learning rate (after any decay).
  virtual double learning_rate() const = 0;
};

/// Plain SGD with optional global-norm gradient clipping.
class SgdOptimizer : public Optimizer {
 public:
  struct Options {
    double learning_rate = 0.05;
    /// If > 0, scale gradients so their global L2 norm is at most this.
    double clip_norm = 5.0;
  };

  explicit SgdOptimizer(const Options& options) : options_(options) {}

  void Register(Tensor* tensor) override { tensors_.push_back(tensor); }
  void Step() override;
  double learning_rate() const override { return options_.learning_rate; }

  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  Options options_;
  std::vector<Tensor*> tensors_;
};

/// Adam (Kingma & Ba) with bias correction and global-norm clipping.
class AdamOptimizer : public Optimizer {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double clip_norm = 5.0;
  };

  explicit AdamOptimizer(const Options& options) : options_(options) {}

  void Register(Tensor* tensor) override;
  void Step() override;
  double learning_rate() const override { return options_.learning_rate; }

  void set_learning_rate(double lr) { options_.learning_rate = lr; }
  int64_t step_count() const { return step_; }

 private:
  struct Slot {
    Tensor* tensor;
    Vec m;
    Vec v;
  };

  Options options_;
  std::vector<Slot> slots_;
  int64_t step_ = 0;
};

/// Scales all registered tensors' gradients so the global L2 norm is at
/// most `clip_norm` (no-op when clip_norm <= 0). Exposed for tests.
void ClipGradients(const std::vector<Tensor*>& tensors, double clip_norm);

}  // namespace querc::nn

#endif  // QUERC_NN_OPTIMIZER_H_
