# Empty dependencies file for bench_recommender.
# This may be replaced when dependencies are built.
