#include "util/logging.h"

#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace querc::util {
namespace {

/// Restores global logging knobs after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = GetLogLevel(); }
  void TearDown() override {
    SetLogLevel(saved_level_);
    SetLogTimestamps(false);
    SetLogThreadIds(false);
  }
  LogLevel saved_level_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, PlainRecordHasLevelFileAndLine) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  QUERC_LOG(Info) << "hello " << 42;
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(std::regex_match(
      out, std::regex(R"(\[INFO test_util_logging\.cc:\d+\] hello 42\n)")))
      << out;
}

TEST_F(LoggingTest, BelowLevelIsDropped) {
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  QUERC_LOG(Info) << "invisible";
  QUERC_LOG(Error) << "visible";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, TimestampPrefixIsIso8601Utc) {
  SetLogLevel(LogLevel::kInfo);
  SetLogTimestamps(true);
  testing::internal::CaptureStderr();
  QUERC_LOG(Info) << "stamped";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(std::regex_match(
      out,
      std::regex(
          R"(\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z \[INFO .*\] stamped\n)")))
      << out;
}

TEST_F(LoggingTest, ThreadIdPrefixWhenEnabled) {
  SetLogLevel(LogLevel::kInfo);
  SetLogThreadIds(true);
  testing::internal::CaptureStderr();
  QUERC_LOG(Info) << "tagged";
  std::string out = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(std::regex_match(
      out, std::regex(R"(\[tid [^\]]+\] \[INFO .*\] tagged\n)")))
      << out;
}

TEST_F(LoggingTest, ConcurrentRecordsNeverInterleave) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        QUERC_LOG(Info) << "worker=" << t << " line=" << i << " tail";
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string out = testing::internal::GetCapturedStderr();

  // Every line must be one complete record: prefix, payload, "tail".
  std::regex line_re(
      R"(\[INFO test_util_logging\.cc:\d+\] worker=\d+ line=\d+ tail)");
  size_t lines = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    size_t eol = out.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated record";
    std::string line = out.substr(pos, eol - pos);
    EXPECT_TRUE(std::regex_match(line, line_re)) << "mangled: " << line;
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace querc::util
