#include "ml/knn.h"

#include <algorithm>
#include <cassert>

namespace querc::ml {

void KnnClassifier::Fit(const Dataset& data) {
  assert(!data.x.empty());
  train_ = data;
  num_classes_ = 0;
  for (int y : data.y) num_classes_ = std::max(num_classes_, y + 1);
}

std::vector<size_t> KnnClassifier::Neighbors(const nn::Vec& v, int k) const {
  std::vector<std::pair<double, size_t>> dists;
  dists.reserve(train_.size());
  for (size_t i = 0; i < train_.size(); ++i) {
    dists.emplace_back(nn::SquaredDistance(v, train_.x[i]), i);
  }
  size_t kk = std::min<size_t>(static_cast<size_t>(std::max(1, k)),
                               dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(kk),
                    dists.end());
  std::vector<size_t> out;
  out.reserve(kk);
  for (size_t i = 0; i < kk; ++i) out.push_back(dists[i].second);
  return out;
}

int KnnClassifier::Predict(const nn::Vec& v) const {
  std::vector<size_t> nbrs = Neighbors(v, options_.k);
  std::vector<int> votes(static_cast<size_t>(num_classes_), 0);
  for (size_t i : nbrs) ++votes[static_cast<size_t>(train_.y[i])];
  int best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<size_t>(best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace querc::ml
