#include "ml/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace querc::ml {

namespace {

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
std::vector<nn::Vec> SeedPlusPlus(const std::vector<nn::Vec>& points, size_t k,
                                  util::Rng& rng) {
  std::vector<nn::Vec> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.NextUint64(points.size())]);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], nn::SquaredDistance(points[i],
                                                  centroids.back()));
      total += d2[i];
    }
    // All weights zero (every point coincides with a chosen centroid, or
    // k exceeds the number of distinct points): the weighted draw is
    // undefined, so fall back to a uniform pick.
    size_t pick = total > 0.0 ? rng.WeightedIndex(d2)
                              : rng.NextUint64(points.size());
    centroids.push_back(points[pick]);
  }
  return centroids;
}

KMeansResult RunOnce(const std::vector<nn::Vec>& points, size_t k,
                     const KMeansOptions& options, util::Rng& rng) {
  const size_t n = points.size();
  const size_t dim = points[0].size();
  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, rng);
  result.assignment.assign(n, -1);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (size_t c = 0; c < k; ++c) {
        double d = nn::SquaredDistance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update step.
    std::vector<nn::Vec> sums(k, nn::Vec(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(result.assignment[i]);
      nn::Axpy(1.0, points[i], sums[c]);
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centroids[c] = points[rng.NextUint64(n)];
        continue;
      }
      for (double& v : sums[c]) v /= static_cast<double>(counts[c]);
      result.centroids[c] = std::move(sums[c]);
    }

    if (prev_inertia - inertia < options.tolerance * std::max(1.0, inertia)) {
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

KMeansResult KMeans(const std::vector<nn::Vec>& points, size_t k,
                    const KMeansOptions& options) {
  assert(!points.empty());
  k = std::clamp<size_t>(k, 1, points.size());
  util::Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < std::max(1, options.num_seeding_trials);
       ++trial) {
    KMeansResult r = RunOnce(points, k, options, rng);
    if (r.inertia < best.inertia) best = std::move(r);
  }
  return best;
}

std::vector<size_t> NearestPointToCentroids(const std::vector<nn::Vec>& points,
                                            const KMeansResult& result) {
  std::vector<size_t> nearest(result.centroids.size(), 0);
  std::vector<double> best(result.centroids.size(),
                           std::numeric_limits<double>::infinity());
  // First pass: restrict witnesses to the centroid's own cluster members.
  for (size_t i = 0; i < points.size(); ++i) {
    size_t c = static_cast<size_t>(result.assignment[i]);
    double d = nn::SquaredDistance(points[i], result.centroids[c]);
    if (d < best[c]) {
      best[c] = d;
      nearest[c] = i;
    }
  }
  // Fallback for clusters that own no points: globally nearest point.
  for (size_t c = 0; c < result.centroids.size(); ++c) {
    if (best[c] == std::numeric_limits<double>::infinity()) {
      for (size_t i = 0; i < points.size(); ++i) {
        double d = nn::SquaredDistance(points[i], result.centroids[c]);
        if (d < best[c]) {
          best[c] = d;
          nearest[c] = i;
        }
      }
    }
  }
  return nearest;
}

ElbowResult ElbowMethod(const std::vector<nn::Vec>& points,
                        const ElbowOptions& options) {
  ElbowResult result;
  if (points.empty()) return result;
  // Clamp the sweep range so the loop always runs at least once; with
  // k_min > points.size() it would otherwise never execute and return
  // chosen_k == 0, which crashes downstream summarizers.
  const size_t k_max = std::clamp<size_t>(options.k_max, 1, points.size());
  const size_t k_min = std::clamp<size_t>(options.k_min, 1, k_max);
  const size_t k_step = std::max<size_t>(1, options.k_step);
  // Exact float-zero comparison misses "perfect" clusterings whose
  // inertia is a rounding hair above 0; use a tolerance instead.
  constexpr double kInertiaEps = 1e-12;
  double prev_inertia = -1.0;
  double max_drop = 0.0;
  size_t prev_k = 0;
  for (size_t k = k_min; k <= k_max; k += k_step) {
    KMeansResult km = KMeans(points, k, options.kmeans);
    result.ks.push_back(k);
    result.inertias.push_back(km.inertia);
    if (prev_inertia >= 0.0 && prev_inertia <= kInertiaEps) {
      // Perfect clustering already reached at the previous k.
      result.chosen_k = prev_k;
      return result;
    }
    if (prev_inertia > 0.0) {
      // "Rate of change plateaus": the improvement this step is small
      // relative to the largest improvement seen so far.
      double drop = prev_inertia - km.inertia;
      max_drop = std::max(max_drop, drop);
      if (max_drop > 0.0 && drop < options.plateau_threshold * max_drop) {
        result.chosen_k = prev_k;
        return result;
      }
    }
    prev_inertia = km.inertia;
    prev_k = k;
  }
  result.chosen_k = prev_k;
  return result;
}

}  // namespace querc::ml
