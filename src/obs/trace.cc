#include "obs/trace.h"

#include <cstdio>

namespace querc::obs {

namespace {

thread_local Trace* g_current_trace = nullptr;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Histogram& StageHistogram(const std::string& stage) {
  return MetricsRegistry::Global().GetHistogram(
      "querc_stage_ms", {{"stage", stage}},
      "Per-stage latency of the query pipeline in milliseconds");
}

void Span::End() {
  if (hist_ == nullptr) return;
  double ms = MsSince(start_);
  hist_->Record(ms);
  if (stage_ != nullptr && g_current_trace != nullptr) {
    g_current_trace->AddStage(stage_, ms);
  }
  hist_ = nullptr;
}

Trace::Trace(const char* name, Histogram* total_hist)
    : name_(name),
      total_hist_(total_hist),
      parent_(g_current_trace),
      start_(Clock::now()) {
  g_current_trace = this;
}

Trace::~Trace() {
  if (total_hist_ != nullptr) total_hist_->Record(ElapsedMs());
  g_current_trace = parent_;
}

Trace* Trace::Current() { return g_current_trace; }

double Trace::ElapsedMs() const { return MsSince(start_); }

std::string Trace::Summary() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", ElapsedMs());
  std::string out = std::string(name_) + " " + buf;
  for (const auto& [stage, ms] : stages_) {
    std::snprintf(buf, sizeof(buf), " %s=%.3fms", stage, ms);
    out += buf;
  }
  return out;
}

}  // namespace querc::obs
