#ifndef QUERC_ENGINE_ADVISOR_H_
#define QUERC_ENGINE_ADVISOR_H_

#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "engine/index.h"

namespace querc::engine {

/// Budget and search parameters for the simulated tuning advisor. The
/// budget is expressed in minutes to mirror the paper's Database Engine
/// Tuning Advisor experiments; internally one "minute" buys a fixed number
/// of what-if optimizer calls, and each (query, configuration) costing is
/// one call. A fixed startup overhead models DTA's setup phase — below it
/// the advisor returns no recommendation at all for any input (the paper:
/// "for time budgets less than 3 minutes, the advisor does not produce any
/// index recommendations for any method").
struct AdvisorOptions {
  double budget_minutes = 10.0;
  double whatif_calls_per_minute = 42000.0;
  double startup_minutes = 2.6;
  int max_indexes = 8;
  int max_rounds = 8;
  /// Ignore candidates whose marginal estimated benefit (simulated
  /// seconds over the whole input) is below this.
  double min_benefit_seconds = 0.05;
  /// Total index storage allowed, in MB. 0 = unlimited. Candidates that
  /// would exceed the remaining budget are skipped during greedy search.
  double max_storage_mb = 0.0;
  /// When true, a post-refinement MERGE phase (DTA-style) tries to fuse
  /// selected single-column indexes on the same table into composite
  /// indexes, keeping fusions that lower the estimated workload cost and
  /// the storage footprint. Costs extra what-if calls. Off by default so
  /// the headline Figure 3 reproduction is unaffected.
  bool enable_index_merging = false;
};

/// Outcome of one advisor run.
struct AdvisorResult {
  IndexConfig config;
  int64_t whatif_calls_used = 0;
  int rounds_completed = 0;
  /// Whether the high-fidelity refinement pass ran to completion. When it
  /// does, indexes that actually hurt (misestimation victims) are pruned.
  bool completed_refinement = false;
  /// Total estimated size of the recommended configuration (MB).
  double storage_mb = 0.0;
  std::vector<std::string> log;
};

/// Greedy what-if index advisor over the simulated cost model:
///   1. dedup identical query texts (DTA-style built-in compression —
///      weak: parameterized instances rarely collide);
///   2. enumerate single-column candidate indexes from filter columns;
///   3. cheap heuristic pre-scoring orders candidates (free);
///   4. budgeted greedy rounds pick candidates by marginal ESTIMATED
///      benefit — each (query, config) costing consumes one what-if call;
///   5. a refinement pass re-costs with the high-fidelity (actual) model
///      and drops harmful indexes — only if budget remains.
///
/// The advisor's cost therefore scales with (distinct queries) x
/// (candidates), which is why workload summaries reach the optimal
/// configuration within budgets where the full workload cannot — the
/// mechanism behind Figure 3.
class TuningAdvisor {
 public:
  TuningAdvisor(const CostModel* model, const AdvisorOptions& options)
      : model_(model), options_(options) {}

  AdvisorResult Recommend(const std::vector<std::string>& workload_texts,
                          sql::Dialect dialect = sql::Dialect::kSqlServer)
      const;

 private:
  const CostModel* model_;
  AdvisorOptions options_;
};

}  // namespace querc::engine

#endif  // QUERC_ENGINE_ADVISOR_H_
