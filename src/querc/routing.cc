#include "querc/routing.h"

namespace querc::core {

util::Status RoutingPolicyChecker::Train(const workload::Workload& history) {
  if (history.empty()) {
    return util::Status::InvalidArgument("routing: empty history");
  }
  ml::Dataset data;
  for (const auto& q : history) {
    data.x.push_back(embedder_->EmbedQuery(q.text, q.dialect));
    data.y.push_back(clusters_.FitId(q.cluster));
  }
  forest_.Fit(data);
  trained_ = true;
  return util::Status::OK();
}

std::string RoutingPolicyChecker::PredictCluster(
    const workload::LabeledQuery& query) const {
  if (!trained_) return "";
  int id = forest_.Predict(embedder_->EmbedQuery(query.text, query.dialect));
  return clusters_.Label(id);
}

std::vector<RoutingPolicyChecker::Misrouting> RoutingPolicyChecker::Check(
    const workload::Workload& batch) const {
  std::vector<Misrouting> out;
  if (!trained_) return out;
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto& q = batch[i];
    nn::Vec v = embedder_->EmbedQuery(q.text, q.dialect);
    std::vector<double> proba = forest_.PredictProba(v);
    size_t best = 0;
    for (size_t c = 1; c < proba.size(); ++c) {
      if (proba[c] > proba[best]) best = c;
    }
    const std::string& predicted = clusters_.Label(static_cast<int>(best));
    if (predicted != q.cluster && proba[best] >= options_.min_confidence) {
      out.push_back({i, q.cluster, predicted, proba[best]});
    }
  }
  return out;
}

}  // namespace querc::core
