#include "ml/kmedoids.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace querc::ml {
namespace {

TEST(KMedoidsTest, RecoversSeparatedGroups) {
  // Two groups on a line: {0,1,2} and {100,101,102}.
  std::vector<double> xs = {0, 1, 2, 100, 101, 102};
  auto dist = [&](size_t i, size_t j) { return std::abs(xs[i] - xs[j]); };
  KMedoidsResult result = KMedoids(xs.size(), dist, 2);
  ASSERT_EQ(result.medoids.size(), 2u);
  // Medoids are the group centers (points 1 and 101 -> indices 1 and 4).
  std::vector<size_t> sorted = result.medoids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted[0], 1u);
  EXPECT_EQ(sorted[1], 4u);
  // All members assigned to their group's medoid.
  EXPECT_EQ(result.assignment[0], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
  EXPECT_NEAR(result.total_cost, 4.0, 1e-9);
}

TEST(KMedoidsTest, MedoidsAreInputPoints) {
  std::vector<double> xs = {5, 6, 7, 8, 9};
  auto dist = [&](size_t i, size_t j) { return std::abs(xs[i] - xs[j]); };
  KMedoidsResult result = KMedoids(xs.size(), dist, 3);
  for (size_t m : result.medoids) EXPECT_LT(m, xs.size());
}

TEST(KMedoidsTest, KOneIsGeometricMedian) {
  std::vector<double> xs = {0, 0, 0, 10};
  auto dist = [&](size_t i, size_t j) { return std::abs(xs[i] - xs[j]); };
  KMedoidsResult result = KMedoids(xs.size(), dist, 1);
  ASSERT_EQ(result.medoids.size(), 1u);
  EXPECT_LT(result.medoids[0], 3u);  // any of the zeros
  EXPECT_NEAR(result.total_cost, 10.0, 1e-9);
}

TEST(KMedoidsTest, KClampedToN) {
  std::vector<double> xs = {1, 2};
  auto dist = [&](size_t i, size_t j) { return std::abs(xs[i] - xs[j]); };
  KMedoidsResult result = KMedoids(2, dist, 99);
  EXPECT_EQ(result.medoids.size(), 2u);
  EXPECT_NEAR(result.total_cost, 0.0, 1e-12);
}

TEST(KMedoidsTest, CustomDistanceChangesClustering) {
  // Points on a 2D grid; custom distance that only looks at dimension 1
  // groups differently from one that only looks at dimension 0 — this is
  // the Chaudhuri-style "custom distance function per workload" knob.
  std::vector<nn::Vec> pts = {{0, 0}, {0, 10}, {10, 0}, {10, 10}};
  auto dist_x = [&](size_t i, size_t j) {
    return std::abs(pts[i][0] - pts[j][0]);
  };
  auto dist_y = [&](size_t i, size_t j) {
    return std::abs(pts[i][1] - pts[j][1]);
  };
  KMedoidsResult by_x = KMedoids(4, dist_x, 2);
  KMedoidsResult by_y = KMedoids(4, dist_y, 2);
  // Under dist_x, {0,1} cluster together; under dist_y, {0,2} do.
  EXPECT_EQ(by_x.assignment[0], by_x.assignment[1]);
  EXPECT_NE(by_x.assignment[0], by_x.assignment[2]);
  EXPECT_EQ(by_y.assignment[0], by_y.assignment[2]);
  EXPECT_NE(by_y.assignment[0], by_y.assignment[1]);
}

TEST(KMedoidsTest, SwapPhaseImprovesOverBuild) {
  // Adversarial-ish random instance: final cost must never exceed the
  // trivial 1-medoid cost, and iterations recorded.
  util::Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(rng.UniformDouble(0, 100));
  auto dist = [&](size_t i, size_t j) { return std::abs(xs[i] - xs[j]); };
  KMedoidsResult k1 = KMedoids(xs.size(), dist, 1);
  KMedoidsResult k5 = KMedoids(xs.size(), dist, 5);
  EXPECT_LT(k5.total_cost, k1.total_cost);
  EXPECT_GE(k5.iterations, 1);
}

}  // namespace
}  // namespace querc::ml
