file(REMOVE_RECURSE
  "CMakeFiles/test_querc_training_module.dir/test_querc_training_module.cc.o"
  "CMakeFiles/test_querc_training_module.dir/test_querc_training_module.cc.o.d"
  "test_querc_training_module"
  "test_querc_training_module.pdb"
  "test_querc_training_module[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_querc_training_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
