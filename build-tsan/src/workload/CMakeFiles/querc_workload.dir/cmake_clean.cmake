file(REMOVE_RECURSE
  "CMakeFiles/querc_workload.dir/io.cc.o"
  "CMakeFiles/querc_workload.dir/io.cc.o.d"
  "CMakeFiles/querc_workload.dir/snowflake_gen.cc.o"
  "CMakeFiles/querc_workload.dir/snowflake_gen.cc.o.d"
  "CMakeFiles/querc_workload.dir/tpch_gen.cc.o"
  "CMakeFiles/querc_workload.dir/tpch_gen.cc.o.d"
  "CMakeFiles/querc_workload.dir/workload.cc.o"
  "CMakeFiles/querc_workload.dir/workload.cc.o.d"
  "libquerc_workload.a"
  "libquerc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
