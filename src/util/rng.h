#ifndef QUERC_UTIL_RNG_H_
#define QUERC_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace querc::util {

/// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Every randomized component in the library takes an explicit
/// seed so experiments and tests reproduce bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    has_gaussian_ = false;
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the bounds used here but we still reject the tail.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller (cached second deviate).
  double Gaussian() {
    if (has_gaussian_) {
      has_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
      u1 = UniformDouble();
    } while (u1 <= 1e-300);
    const double u2 = UniformDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    cached_gaussian_ = r * std::sin(2.0 * std::numbers::pi * u2);
    has_gaussian_ = true;
    return r * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples an index from unnormalized non-negative weights. Returns
  /// `weights.size() - 1` if rounding pushes past the end; returns 0 for an
  /// all-zero weight vector.
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double target = UniformDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (target < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Zipf-distributed rank in [0, n) with exponent `s`. Linear-time CDF walk
  /// over a lazily cached table; suitable for the catalog/workload sizes used
  /// here.
  size_t Zipf(size_t n, double s) {
    if (n == 0) return 0;
    if (zipf_cdf_n_ != n || zipf_cdf_s_ != s) {
      zipf_cdf_.resize(n);
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        zipf_cdf_[i] = acc;
      }
      for (auto& c : zipf_cdf_) c /= acc;
      zipf_cdf_n_ = n;
      zipf_cdf_s_ = s;
    }
    const double u = UniformDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = n - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (zipf_cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Derives an independent child generator; useful for giving each worker
  /// or module its own deterministic stream.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
  std::vector<double> zipf_cdf_;
  size_t zipf_cdf_n_ = 0;
  double zipf_cdf_s_ = -1.0;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_RNG_H_
