#include "ml/kmeans.h"

#include <gtest/gtest.h>

namespace querc::ml {
namespace {

/// Three well-separated Gaussian blobs in 2D.
std::vector<nn::Vec> Blobs(int per_cluster, util::Rng& rng) {
  std::vector<nn::Vec> points;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      points.push_back({centers[c][0] + rng.Gaussian(0, 0.5),
                        centers[c][1] + rng.Gaussian(0, 0.5)});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  util::Rng rng(3);
  auto points = Blobs(40, rng);
  KMeansResult result = KMeans(points, 3);
  ASSERT_EQ(result.centroids.size(), 3u);
  // Every point must share its cluster with its blob-mates.
  for (int c = 0; c < 3; ++c) {
    int first = result.assignment[static_cast<size_t>(c) * 40];
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(result.assignment[static_cast<size_t>(c) * 40 +
                                  static_cast<size_t>(i)],
                first);
    }
  }
  // Inertia for tight blobs is small.
  EXPECT_LT(result.inertia / static_cast<double>(points.size()), 1.0);
}

TEST(KMeansTest, KClampedToPointCount) {
  std::vector<nn::Vec> points = {{0.0}, {1.0}};
  KMeansResult result = KMeans(points, 10);
  EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeansTest, SingleCluster) {
  std::vector<nn::Vec> points = {{0.0}, {2.0}, {4.0}};
  KMeansResult result = KMeans(points, 1);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 2.0, 1e-9);
}

TEST(KMeansTest, DeterministicForSeed) {
  util::Rng rng(5);
  auto points = Blobs(20, rng);
  KMeansOptions options;
  options.seed = 42;
  KMeansResult a = KMeans(points, 3, options);
  KMeansResult b = KMeans(points, 3, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  util::Rng rng(7);
  auto points = Blobs(30, rng);
  KMeansOptions one;
  one.num_seeding_trials = 1;
  KMeansOptions five;
  five.num_seeding_trials = 5;
  EXPECT_LE(KMeans(points, 5, five).inertia, KMeans(points, 5, one).inertia);
}

TEST(KMeansTest, WitnessesAreClusterMembers) {
  util::Rng rng(9);
  auto points = Blobs(25, rng);
  KMeansResult result = KMeans(points, 3);
  auto witnesses = NearestPointToCentroids(points, result);
  ASSERT_EQ(witnesses.size(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    size_t w = witnesses[c];
    ASSERT_LT(w, points.size());
    EXPECT_EQ(result.assignment[w], static_cast<int>(c));
    // The witness must be the in-cluster point closest to the centroid.
    double wd = nn::SquaredDistance(points[w], result.centroids[c]);
    for (size_t i = 0; i < points.size(); ++i) {
      if (result.assignment[i] == static_cast<int>(c)) {
        EXPECT_LE(wd, nn::SquaredDistance(points[i], result.centroids[c]) +
                          1e-12);
      }
    }
  }
}

TEST(ElbowTest, FindsTrueClusterCountOnBlobs) {
  util::Rng rng(11);
  auto points = Blobs(40, rng);
  ElbowOptions options;
  options.k_min = 2;
  options.k_max = 12;
  options.k_step = 1;
  ElbowResult result = ElbowMethod(points, options);
  // The drop plateaus right after the true K=3.
  EXPECT_GE(result.chosen_k, 3u);
  EXPECT_LE(result.chosen_k, 5u);
  EXPECT_EQ(result.ks.size(), result.inertias.size());
  // Inertia is non-increasing in k (with best-of restarts it may wiggle
  // slightly; require the broad trend).
  EXPECT_GT(result.inertias.front(), result.inertias.back());
}

TEST(ElbowTest, TinyInputDoesNotCrash) {
  std::vector<nn::Vec> points = {{0.0}, {1.0}, {2.0}};
  ElbowResult result = ElbowMethod(points);
  EXPECT_GE(result.chosen_k, 1u);
  EXPECT_LE(result.chosen_k, 3u);
}

// Regression: with k_min > points.size() the sweep loop never ran and
// ElbowMethod returned chosen_k == 0, which crashes downstream
// summarizers that call KMeans(points, chosen_k). The range is clamped
// so at least one k is always evaluated.
TEST(ElbowTest, KMinLargerThanPointCount) {
  std::vector<nn::Vec> points = {{0.0}, {5.0}};
  ElbowOptions options;
  options.k_min = 10;
  options.k_max = 40;
  ElbowResult result = ElbowMethod(points, options);
  EXPECT_GE(result.chosen_k, 1u);
  EXPECT_LE(result.chosen_k, points.size());
  ASSERT_FALSE(result.ks.empty());
}

// Regression: the perfect-clustering early exit compared inertia to 0.0
// exactly; identical points (inertia exactly or nearly 0 at every k) must
// terminate with a valid k rather than fall through with chosen_k == 0.
TEST(ElbowTest, AllPointsIdentical) {
  std::vector<nn::Vec> points(6, nn::Vec{2.0, 2.0});
  ElbowOptions options;
  options.k_min = 1;
  options.k_max = 6;
  options.k_step = 1;
  ElbowResult result = ElbowMethod(points, options);
  EXPECT_GE(result.chosen_k, 1u);
  EXPECT_LE(result.chosen_k, points.size());
}

TEST(ElbowTest, EmptyInputReturnsZero) {
  ElbowResult result = ElbowMethod({});
  EXPECT_EQ(result.chosen_k, 0u);
  EXPECT_TRUE(result.ks.empty());
}

// Regression: k-means++ seeding drew from an all-zero weight vector when
// every point coincides with an already-chosen centroid (identical points,
// or k > distinct points); it now falls back to a uniform pick.
TEST(KMeansTest, AllPointsIdenticalDoesNotCrash) {
  std::vector<nn::Vec> points(5, nn::Vec{1.0, 1.0, 1.0});
  KMeansResult result = KMeans(points, 3);
  ASSERT_EQ(result.centroids.size(), 3u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
  for (const auto& c : result.centroids) {
    EXPECT_NEAR(c[0], 1.0, 1e-12);
  }
}

TEST(KMeansTest, KExceedsDistinctPoints) {
  std::vector<nn::Vec> points = {{0.0}, {0.0}, {0.0}, {7.0}};
  KMeansResult result = KMeans(points, 4);
  ASSERT_EQ(result.centroids.size(), 4u);
  // Both distinct values are represented and total inertia is zero.
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace querc::ml
