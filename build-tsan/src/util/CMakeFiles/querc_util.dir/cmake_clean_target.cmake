file(REMOVE_RECURSE
  "libquerc_util.a"
)
