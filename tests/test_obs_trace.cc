#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/stats_reporter.h"

namespace querc::obs {
namespace {

TEST(Span, RecordsIntoHistogram) {
  Histogram h;
  {
    Span span(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.max, 0.5);
}

TEST(Span, EndRecordsOnceAndDisarmsDestructor) {
  Histogram h;
  {
    Span span(&h);
    span.End();
    span.End();
  }
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(Span, MoveTransfersOwnership) {
  Histogram h;
  {
    Span outer = [&h] { return Span(&h); }();
    (void)outer;
  }
  // The moved-from temporary must not double-record.
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(Trace, CurrentNestsAndRestores) {
  EXPECT_EQ(Trace::Current(), nullptr);
  {
    Trace outer("outer");
    EXPECT_EQ(Trace::Current(), &outer);
    {
      Trace inner("inner");
      EXPECT_EQ(Trace::Current(), &inner);
      EXPECT_STREQ(Trace::Current()->name(), "inner");
    }
    EXPECT_EQ(Trace::Current(), &outer);
  }
  EXPECT_EQ(Trace::Current(), nullptr);
}

TEST(Trace, IsConfinedToItsThread) {
  Trace trace("main-thread");
  std::atomic<Trace*> seen{&trace};
  std::thread other([&seen] { seen.store(Trace::Current()); });
  other.join();
  EXPECT_EQ(seen.load(), nullptr);
}

TEST(Trace, CollectsStageBreakdownFromSpans) {
  Histogram lex_hist;
  Histogram embed_hist;
  Trace trace("process");
  {
    Span span(&lex_hist, "lex");
  }
  {
    Span span(&embed_hist, "embed");
  }
  ASSERT_EQ(trace.stages().size(), 2u);
  EXPECT_STREQ(trace.stages()[0].first, "lex");
  EXPECT_STREQ(trace.stages()[1].first, "embed");
  std::string summary = trace.Summary();
  EXPECT_NE(summary.find("process"), std::string::npos);
  EXPECT_NE(summary.find("lex="), std::string::npos);
  EXPECT_NE(summary.find("embed="), std::string::npos);
}

TEST(Trace, RecordsTotalIntoHistogram) {
  Histogram total;
  { Trace trace("timed", &total); }
  EXPECT_EQ(total.Snapshot().count, 1u);
}

TEST(StageHistogram, SharesSeriesPerStage) {
  Histogram& a = StageHistogram("unit_test_stage");
  Histogram& b = StageHistogram("unit_test_stage");
  EXPECT_EQ(&a, &b);
  uint64_t before = a.Snapshot().count;
  { Span span(&a, "unit_test_stage"); }
  EXPECT_EQ(a.Snapshot().count, before + 1);
}

TEST(StatsReporter, SummaryLineReflectsRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("querc_q_total").Increment(9);
  registry.GetHistogram("querc_lat_ms").Record(2.0);
  StatsReporter::Options options;
  options.registry = &registry;
  StatsReporter reporter(options);
  std::string line = reporter.SummaryLine();
  EXPECT_EQ(line.rfind("stats:", 0), 0u);
  EXPECT_NE(line.find("querc_q_total=9"), std::string::npos);
  EXPECT_NE(line.find("querc_lat_ms[n=1"), std::string::npos);
}

TEST(StatsReporter, PeriodicallyEmitsThroughSink) {
  MetricsRegistry registry;
  registry.GetCounter("querc_ticks_total").Increment();
  std::mutex mu;
  std::vector<std::string> lines;
  StatsReporter::Options options;
  options.registry = &registry;
  options.interval = std::chrono::milliseconds(5);
  options.sink = [&mu, &lines](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  StatsReporter reporter(options);
  reporter.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  reporter.Stop();
  std::lock_guard<std::mutex> lock(mu);
  // Several periodic lines plus the final flush from Stop().
  ASSERT_GE(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_NE(line.find("querc_ticks_total=1"), std::string::npos);
  }
}

TEST(StatsReporter, StopWithoutStartFlushesNothing) {
  int calls = 0;
  StatsReporter::Options options;
  options.sink = [&calls](const std::string&) { ++calls; };
  {
    StatsReporter reporter(options);
    reporter.Stop();
  }
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace querc::obs
