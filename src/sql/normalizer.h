#ifndef QUERC_SQL_NORMALIZER_H_
#define QUERC_SQL_NORMALIZER_H_

#include <string>
#include <vector>

#include "sql/token.h"

namespace querc::sql {

/// Options for turning a token stream into the canonical word sequence the
/// embedders consume. The defaults match the paper's setting: literals are
/// folded to placeholder words so the embedding captures query *structure
/// and schema*, not parameter values.
struct NormalizeOptions {
  /// Replace every number literal with "<num>" and string literal with
  /// "<str>". Keeps the vocabulary small and parameter-invariant.
  bool fold_literals = true;
  /// Lower-case identifiers so Lineitem/LINEITEM/lineitem coincide.
  bool lowercase_identifiers = true;
  /// Drop comments entirely (they rarely carry workload signal).
  bool strip_comments = true;
  /// Fold all parameter markers to "<param>".
  bool fold_parameters = true;
};

/// Placeholder words produced by folding.
inline constexpr const char* kNumberPlaceholder = "<num>";
inline constexpr const char* kStringPlaceholder = "<str>";
inline constexpr const char* kParamPlaceholder = "<param>";

/// Converts tokens into the normalized word sequence. Keywords come out
/// upper-case ("SELECT"), identifiers lower-case, operators/punctuation
/// verbatim.
std::vector<std::string> Normalize(const TokenList& tokens,
                                   const NormalizeOptions& options = {});

/// Joins the normalized words with single spaces; used as a stable
/// fingerprint for duplicate detection (queries differing only in literal
/// values share a fingerprint under the default options).
std::string NormalizedText(const TokenList& tokens,
                           const NormalizeOptions& options = {});

}  // namespace querc::sql

#endif  // QUERC_SQL_NORMALIZER_H_
