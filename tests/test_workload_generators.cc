#include <set>

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "workload/snowflake_gen.h"
#include "workload/tpch_gen.h"

namespace querc::workload {
namespace {

TEST(DateHelpersTest, RoundTrip) {
  int64_t days = DaysFromCivil(1995, 6, 17);
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  EXPECT_EQ(y, 1995);
  EXPECT_EQ(m, 6);
  EXPECT_EQ(d, 17);
  EXPECT_EQ(FormatDate(days), "1995-06-17");
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
}

TEST(DateHelpersTest, LeapYear) {
  EXPECT_EQ(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28), 2);
  EXPECT_EQ(DaysFromCivil(1900, 3, 1) - DaysFromCivil(1900, 2, 28), 1);
}

// Every TPC-H template must lex cleanly under the STRICT SQL Server lexer:
// the generator emits real SQL, not just strings.
class TpchLexTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchLexTest, StrictLexClean) {
  util::Rng rng(100 + static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 5; ++i) {
    std::string text = TpchGenerator::Instantiate(GetParam(), rng);
    ASSERT_FALSE(text.empty());
    sql::LexOptions options;
    options.dialect = sql::Dialect::kSqlServer;
    auto result = sql::Lex(text, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << "\n" << text;
    EXPECT_GT(result->size(), 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTemplates, TpchLexTest, ::testing::Range(1, 23));

TEST(TpchGeneratorTest, WorkloadShapeAndOrder) {
  TpchGenerator::Options options;
  options.instances_per_template = 5;
  TpchGenerator gen(options);
  Workload wl = gen.Generate();
  EXPECT_EQ(wl.size(), 22u * 5u);
  // Template-major order: first 5 queries are template 1.
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(wl[i].template_id, 1);
  EXPECT_EQ(wl[5].template_id, 2);
  // Timestamps increase.
  for (size_t i = 1; i < wl.size(); ++i) {
    EXPECT_GT(wl[i].timestamp, wl[i - 1].timestamp);
  }
  // Dialect tagged.
  EXPECT_EQ(wl[0].dialect, sql::Dialect::kSqlServer);
}

TEST(TpchGeneratorTest, ParametersVaryAcrossInstances) {
  TpchGenerator::Options options;
  options.instances_per_template = 10;
  TpchGenerator gen(options);
  Workload wl = gen.Generate();
  std::set<std::string> q6_texts;
  for (const auto& q : wl) {
    if (q.template_id == 6) q6_texts.insert(q.text);
  }
  EXPECT_GE(q6_texts.size(), 8u);  // nearly all instances distinct
}

TEST(TpchGeneratorTest, DeterministicPerSeed) {
  TpchGenerator::Options options;
  options.instances_per_template = 3;
  Workload a = TpchGenerator(options).Generate();
  Workload b = TpchGenerator(options).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].text, b[i].text);
  options.seed = 99;
  Workload c = TpchGenerator(options).Generate();
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) any_diff |= a[i].text != c[i].text;
  EXPECT_TRUE(any_diff);
}

SnowflakeGenerator::Options SmallSnowflake() {
  SnowflakeGenerator::Options options;
  options.seed = 7;
  SnowflakeGenerator::AccountSpec a;
  a.name = "acme";
  a.num_users = 4;
  a.num_queries = 200;
  a.shared_query_rate = 0.0;
  SnowflakeGenerator::AccountSpec b;
  b.name = "globex";
  b.num_users = 3;
  b.num_queries = 150;
  b.shared_query_rate = 0.8;
  options.accounts = {a, b};
  return options;
}

TEST(SnowflakeGeneratorTest, CountsAndLabels) {
  Workload wl = SnowflakeGenerator(SmallSnowflake()).Generate();
  EXPECT_EQ(wl.size(), 350u);
  auto by_account = wl.CountBy(AccountOf);
  EXPECT_EQ(by_account["acme"], 200u);
  EXPECT_EQ(by_account["globex"], 150u);
  auto by_user = wl.CountBy(UserOf);
  EXPECT_EQ(by_user.size(), 7u);
  for (const auto& q : wl) {
    EXPECT_FALSE(q.text.empty());
    EXPECT_FALSE(q.cluster.empty());
    EXPECT_GT(q.runtime_seconds, 0.0);
    EXPECT_GT(q.memory_mb, 0.0);
    EXPECT_EQ(q.dialect, sql::Dialect::kSnowflake);
  }
}

TEST(SnowflakeGeneratorTest, AccountSkewRedistributesVolumeByRank) {
  // The noisy-neighbor knob: skew > 0 hands the rank-0 account a
  // Zipf-style majority of the SAME total, deterministically.
  SnowflakeGenerator::Options options;
  options.seed = 7;
  options.accounts = SnowflakeGenerator::UniformAccounts(
      /*num_accounts=*/4, /*queries_per_account=*/100,
      /*users_per_account=*/3);
  options.account_skew = 2.0;
  Workload wl = SnowflakeGenerator(options).Generate();
  // Total preserved.
  EXPECT_EQ(wl.size(), 400u);
  auto by_account = wl.CountBy(AccountOf);
  ASSERT_EQ(by_account.size(), 4u);
  // 1/r^2 weights over 4 ranks: the head owns ~70%, strictly decreasing,
  // and every listed tenant still appears.
  std::vector<size_t> counts;
  for (const auto& spec : options.accounts) {
    ASSERT_TRUE(by_account.count(spec.name)) << spec.name;
    counts.push_back(by_account[spec.name]);
  }
  EXPECT_GT(counts[0], 400u * 6 / 10);
  for (size_t r = 1; r < counts.size(); ++r) {
    EXPECT_LT(counts[r], counts[r - 1]) << "rank " << r;
    EXPECT_GE(counts[r], 1u);
  }

  // Deterministic: same seed + skew replays the exact split.
  Workload again = SnowflakeGenerator(options).Generate();
  EXPECT_EQ(again.CountBy(AccountOf), by_account);

  // skew = 0 is the legacy path: volumes exactly as specified.
  options.account_skew = 0.0;
  auto flat = SnowflakeGenerator(options).Generate().CountBy(AccountOf);
  for (const auto& spec : options.accounts) {
    EXPECT_EQ(flat[spec.name], 100u) << spec.name;
  }
}

TEST(SnowflakeGeneratorTest, SharedQueryRateControlsTextSharing) {
  Workload wl = SnowflakeGenerator(SmallSnowflake()).Generate();
  Workload acme = wl.FilterByAccount("acme");
  Workload globex = wl.FilterByAccount("globex");
  // globex at 0.8 shared rate has far more cross-user identical text.
  EXPECT_GT(globex.SharedTextFraction(), 0.5);
  EXPECT_LT(acme.SharedTextFraction(), globex.SharedTextFraction());
}

TEST(SnowflakeGeneratorTest, SchemasAreAccountPrivate) {
  Workload wl = SnowflakeGenerator(SmallSnowflake()).Generate();
  // Table names embed the account tag, so no query text of one account
  // names the other account's tables.
  for (const auto& q : wl) {
    if (q.account == "acme") {
      EXPECT_EQ(q.text.find("_globex"), std::string::npos) << q.text;
    } else {
      EXPECT_EQ(q.text.find("_acme"), std::string::npos) << q.text;
    }
  }
}

TEST(SnowflakeGeneratorTest, QueriesLexCleanlyAsSnowflake) {
  Workload wl = SnowflakeGenerator(SmallSnowflake()).Generate();
  sql::LexOptions options;
  options.dialect = sql::Dialect::kSnowflake;
  for (size_t i = 0; i < wl.size(); i += 10) {
    auto result = sql::Lex(wl[i].text, options);
    ASSERT_TRUE(result.ok()) << wl[i].text;
  }
}

TEST(SnowflakeGeneratorTest, Table2AccountMixMatchesPaper) {
  auto specs = SnowflakeGenerator::Table2Accounts();
  ASSERT_EQ(specs.size(), 13u);
  EXPECT_EQ(specs[0].num_users, 28);
  EXPECT_EQ(specs[2].num_users, 46);
  // The three big accounts carry high shared rates.
  EXPECT_GT(specs[0].shared_query_rate, 0.5);
  EXPECT_GT(specs[1].shared_query_rate, 0.5);
  EXPECT_GT(specs[2].shared_query_rate, 0.5);
  // Most small accounts do not.
  EXPECT_LT(specs[5].shared_query_rate, 0.1);
  // Sizes descend like the paper's table.
  EXPECT_GT(specs[0].num_queries, specs[1].num_queries);
  EXPECT_GT(specs[1].num_queries, specs[12].num_queries);
}

TEST(SnowflakeGeneratorTest, ErrorsCorrelateWithTemplates) {
  SnowflakeGenerator::Options options;
  options.seed = 11;
  options.accounts =
      SnowflakeGenerator::UniformAccounts(4, 500, 5);
  Workload wl = SnowflakeGenerator(options).Generate();
  // Errors exist and are concentrated: per (account, template) the error
  // rate is either ~0 or substantial, because templates carry the risk.
  size_t errors = 0;
  for (const auto& q : wl) errors += q.error_code.empty() ? 0 : 1;
  EXPECT_GT(errors, 0u);
  EXPECT_LT(errors, wl.size() / 2);
}

TEST(WorkloadTest, DistinctShapesFoldsParameters) {
  Workload wl;
  LabeledQuery a;
  a.text = "SELECT x FROM t WHERE y = 5";
  LabeledQuery b;
  b.text = "SELECT x FROM t WHERE y = 99";
  LabeledQuery c;
  c.text = "SELECT z FROM t";
  wl.Add(a);
  wl.Add(b);
  wl.Add(c);
  EXPECT_EQ(wl.DistinctShapes(), 2u);
}

}  // namespace
}  // namespace querc::workload
