#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace querc::obs {

namespace {

std::string Num(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string Num(uint64_t v) { return std::to_string(v); }

/// Escapes a Prometheus label value: backslash, double quote, newline.
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` with `extra` appended last; "" when empty.
std::string LabelBlock(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabel(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

void EmitFamilyHeader(std::ostringstream& os, const std::string& name,
                      const char* type,
                      const std::map<std::string, std::string>& help,
                      std::string& last_family) {
  if (name == last_family) return;
  last_family = name;
  auto it = help.find(name);
  if (it != help.end()) {
    os << "# HELP " << name << " " << it->second << "\n";
  }
  os << "# TYPE " << name << " " << type << "\n";
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(key) + "\":\"" + EscapeJson(value) + "\"";
  }
  return out + "}";
}

}  // namespace

std::string ExportPrometheus(const MetricsRegistry& registry,
                             const std::string& prefix) {
  MetricsRegistry::Snapshot snap = registry.Collect(prefix);
  std::ostringstream os;
  std::string last_family;

  for (const auto& sample : snap.counters) {
    EmitFamilyHeader(os, sample.name, "counter", snap.help, last_family);
    os << sample.name << LabelBlock(sample.labels) << " " << Num(sample.value)
       << "\n";
  }
  last_family.clear();
  for (const auto& sample : snap.gauges) {
    EmitFamilyHeader(os, sample.name, "gauge", snap.help, last_family);
    os << sample.name << LabelBlock(sample.labels) << " " << Num(sample.value)
       << "\n";
  }
  last_family.clear();
  for (const auto& sample : snap.histograms) {
    EmitFamilyHeader(os, sample.name, "histogram", snap.help, last_family);
    const HistogramSnapshot& h = sample.snapshot;
    uint64_t cum = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // elide empty buckets: le stays sorted
      cum += h.buckets[i];
      os << sample.name << "_bucket"
         << LabelBlock(sample.labels,
                       "le=\"" + Num(Histogram::BucketUpperBound(i)) + "\"")
         << " " << Num(cum) << "\n";
    }
    os << sample.name << "_bucket"
       << LabelBlock(sample.labels, "le=\"+Inf\"") << " " << Num(h.count)
       << "\n";
    os << sample.name << "_sum" << LabelBlock(sample.labels) << " "
       << Num(h.sum) << "\n";
    os << sample.name << "_count" << LabelBlock(sample.labels) << " "
       << Num(h.count) << "\n";
  }
  return os.str();
}

std::string ExportPrometheus() {
  return ExportPrometheus(MetricsRegistry::Global());
}

std::string ExportJson(const MetricsRegistry& registry,
                       const std::string& prefix) {
  MetricsRegistry::Snapshot snap = registry.Collect(prefix);
  std::ostringstream os;
  os << "{\"counters\":[";
  bool first = true;
  for (const auto& sample : snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << EscapeJson(sample.name) << "\",\"labels\":"
       << JsonLabels(sample.labels) << ",\"value\":" << Num(sample.value)
       << "}";
  }
  os << "],\"gauges\":[";
  first = true;
  for (const auto& sample : snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << EscapeJson(sample.name) << "\",\"labels\":"
       << JsonLabels(sample.labels) << ",\"value\":" << Num(sample.value)
       << "}";
  }
  os << "],\"histograms\":[";
  first = true;
  for (const auto& sample : snap.histograms) {
    if (!first) os << ",";
    first = false;
    const HistogramSnapshot& h = sample.snapshot;
    os << "{\"name\":\"" << EscapeJson(sample.name) << "\",\"labels\":"
       << JsonLabels(sample.labels) << ",\"count\":" << Num(h.count)
       << ",\"sum\":" << Num(h.sum) << ",\"min\":" << Num(h.min)
       << ",\"max\":" << Num(h.max) << ",\"mean\":" << Num(h.mean())
       << ",\"p50\":" << Num(h.p50()) << ",\"p90\":" << Num(h.p90())
       << ",\"p99\":" << Num(h.p99()) << "}";
  }
  os << "]}";
  return os.str();
}

std::string ExportJson() { return ExportJson(MetricsRegistry::Global()); }

}  // namespace querc::obs
