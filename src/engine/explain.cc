#include "engine/explain.h"

#include "util/string_util.h"

namespace querc::engine {

std::string ExplainQuery(const CostModel& model, const std::string& text,
                         const IndexConfig& config, sql::Dialect dialect) {
  QueryCost cost = model.CostText(text, config, dialect);
  std::string out = util::StrFormat(
      "plan for: %.80s%s\n", text.c_str(), text.size() > 80 ? "..." : "");
  double access_est = 0.0;
  double access_act = 0.0;
  for (const TableAccess& access : cost.accesses) {
    access_est += access.estimated_cost;
    access_act += access.actual_cost;
    if (access.used_index) {
      out += util::StrFormat(
          "  INDEX SEEK  %-10s via %-28s est_rows=%.0f act_rows=%.0f "
          "est=%.4fs act=%.4fs%s\n",
          access.table.c_str(), access.index.ToString().c_str(),
          access.estimated_rows, access.actual_rows, access.estimated_cost,
          access.actual_cost,
          access.misestimated ? "  ** CARDINALITY MISESTIMATE **" : "");
    } else {
      out += util::StrFormat(
          "  TABLE SCAN  %-10s est_rows=%.0f act_rows=%.0f est=%.4fs "
          "act=%.4fs\n",
          access.table.c_str(), access.estimated_rows, access.actual_rows,
          access.estimated_cost, access.actual_cost);
    }
  }
  double other_est = cost.estimated_seconds - access_est;
  double other_act = cost.actual_seconds - access_act;
  if (other_act > 1e-12 || other_est > 1e-12) {
    out += util::StrFormat(
        "  JOIN/AGG/SORT                est=%.4fs act=%.4fs\n", other_est,
        other_act);
  }
  out += util::StrFormat("  TOTAL                        est=%.4fs act=%.4fs\n",
                         cost.estimated_seconds, cost.actual_seconds);
  if (cost.used_bad_plan) {
    out +=
        "  WARNING: the optimizer chose an index off a misestimated "
        "HAVING-aggregate cardinality; actual cost exceeds the scan plan.\n";
  }
  return out;
}

}  // namespace querc::engine
