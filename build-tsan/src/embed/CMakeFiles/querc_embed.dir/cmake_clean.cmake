file(REMOVE_RECURSE
  "CMakeFiles/querc_embed.dir/doc2vec.cc.o"
  "CMakeFiles/querc_embed.dir/doc2vec.cc.o.d"
  "CMakeFiles/querc_embed.dir/embedder.cc.o"
  "CMakeFiles/querc_embed.dir/embedder.cc.o.d"
  "CMakeFiles/querc_embed.dir/feature_embedder.cc.o"
  "CMakeFiles/querc_embed.dir/feature_embedder.cc.o.d"
  "CMakeFiles/querc_embed.dir/lstm_autoencoder.cc.o"
  "CMakeFiles/querc_embed.dir/lstm_autoencoder.cc.o.d"
  "CMakeFiles/querc_embed.dir/model_io.cc.o"
  "CMakeFiles/querc_embed.dir/model_io.cc.o.d"
  "CMakeFiles/querc_embed.dir/tfidf_embedder.cc.o"
  "CMakeFiles/querc_embed.dir/tfidf_embedder.cc.o.d"
  "CMakeFiles/querc_embed.dir/vocab.cc.o"
  "CMakeFiles/querc_embed.dir/vocab.cc.o.d"
  "libquerc_embed.a"
  "libquerc_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
