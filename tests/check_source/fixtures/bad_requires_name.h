// Fixture: a REQUIRES-annotated method must carry a `Locked` suffix so
// call sites read as what they are. EvictOne below must be flagged;
// EvictOneLocked and the REQUIRES-annotated lambda must not.
#ifndef FIXTURE_BAD_REQUIRES_NAME_H_
#define FIXTURE_BAD_REQUIRES_NAME_H_

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

class BoundedMap {
 public:
  void Trim() {
    querc::util::MutexLock lock(&mu_);
    EvictOne();
    EvictOneLocked();
    auto drop = [this]() REQUIRES(mu_) { size_ = 0; };
    drop();
  }

 private:
  void EvictOne() REQUIRES(mu_) { --size_; }
  void EvictOneLocked() REQUIRES(mu_) { --size_; }

  querc::util::Mutex mu_;
  int size_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture

#endif  // FIXTURE_BAD_REQUIRES_NAME_H_
