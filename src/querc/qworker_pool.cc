#include "querc/qworker_pool.h"

#include <algorithm>
#include <limits>
#include <map>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace querc::core {

namespace {

obs::Histogram& BatchHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "querc_pool_batch_ms", {},
      "Wall-clock time of one QWorkerPool::ProcessBatch fan-out");
  return hist;
}

obs::Counter& BatchCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_pool_batches_total", {},
      "Batches fanned out across QWorkerPool shards");
  return counter;
}

obs::Counter& ShedCounterSlow(const char* policy) {
  return obs::MetricsRegistry::Global().GetCounter(
      "querc_shed_total", {{"policy", policy}},
      "Queries shed at pool admission, per shed policy");
}

/// Both shed-policy series cached in function-local statics: under
/// overload every rejected query lands here, which is exactly when the
/// registry mutex must not be on the path.
obs::Counter& ShedCounter(QWorkerPool::ShedPolicy policy) {
  if (policy == QWorkerPool::ShedPolicy::kRejectNew) {
    static obs::Counter& counter = ShedCounterSlow("reject_new");
    return counter;
  }
  static obs::Counter& counter = ShedCounterSlow("drop_oldest");
  return counter;
}

obs::Gauge& InFlightGauge() {
  static obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge(
      "querc_pool_in_flight", {},
      "Queries currently admitted and in flight across the pool");
  return gauge;
}

obs::Counter& FanOutErrorsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_pool_fan_out_errors_total", {},
      "Shard fan-out tasks that failed (injected or thrown); their "
      "queries carry the error status");
  return counter;
}

/// FNV-1a 64-bit: stable across runs and platforms (std::hash is not
/// guaranteed to be), so shard assignment is reproducible.
uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

QWorkerPool::QWorkerPool(const Options& options,
                         util::ThreadPool* thread_pool)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.enable_tenant_admission) {
    // The controller stamps this pool's policy on its per-account
    // querc_shed_total series so the label set stays consistent with the
    // pre-tenant {policy} series.
    options_.admission.policy_label =
        options_.shed_policy == ShedPolicy::kRejectNew ? "reject_new"
                                                       : "drop_oldest";
    admission_ =
        std::make_unique<TenantAdmissionController>(options_.admission);
  }
  if (thread_pool == nullptr) {
    util::ThreadPool::Options pool_options;
    pool_options.num_threads =
        options_.threads != 0
            ? options_.threads
            : std::min(options_.num_shards, util::DefaultThreadCount());
    pool_options.pin_threads = options_.pin_shards;
    owned_pool_ = std::make_unique<util::ThreadPool>(pool_options);
    pool_ = owned_pool_.get();
  } else {
    pool_ = thread_pool;
  }
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    QWorker::Options worker = options_.worker;
    worker.application = options_.application + "/" + std::to_string(s);
    shards_.push_back(std::make_unique<QWorker>(worker));
  }
}

void QWorkerPool::Deploy(const std::shared_ptr<const Classifier>& classifier) {
  for (auto& shard : shards_) shard->Deploy(classifier);
}

void QWorkerPool::DeployAll(
    const std::vector<std::shared_ptr<const Classifier>>& classifiers) {
  for (auto& shard : shards_) shard->DeployAll(classifiers);
}

bool QWorkerPool::Undeploy(const std::string& task_name) {
  bool any = false;
  for (auto& shard : shards_) any = shard->Undeploy(task_name) || any;
  return any;
}

void QWorkerPool::DeployFallback(
    const std::shared_ptr<const Classifier>& classifier) {
  for (auto& shard : shards_) shard->DeployFallback(classifier);
}

bool QWorkerPool::UndeployFallback(const std::string& task_name) {
  bool any = false;
  for (auto& shard : shards_) any = shard->UndeployFallback(task_name) || any;
  return any;
}

void QWorkerPool::set_database_sink(QWorker::DatabaseSink sink) {
  for (auto& shard : shards_) shard->set_database_sink(sink);
}

void QWorkerPool::set_training_sink(QWorker::TrainingSink sink) {
  for (auto& shard : shards_) shard->set_training_sink(sink);
}

size_t QWorkerPool::ShardOf(const workload::LabeledQuery& query) {
  switch (options_.partition) {
    case Partition::kByAccount:
      return HashKey(query.account) % shards_.size();
    case Partition::kByUser:
      return HashKey(query.user) % shards_.size();
    case Partition::kRoundRobin:
      return round_robin_.fetch_add(1, std::memory_order_relaxed) %
             shards_.size();
  }
  return 0;
}

size_t QWorkerPool::TryAcquireSlots(size_t want) {
  if (options_.max_in_flight == 0 || want == 0) {
    in_flight_.fetch_add(want, std::memory_order_relaxed);
    InFlightGauge().Add(static_cast<double>(want));
    return want;
  }
  size_t cur = in_flight_.load(std::memory_order_relaxed);
  for (;;) {
    size_t free = options_.max_in_flight > cur
                      ? options_.max_in_flight - cur
                      : 0;
    size_t got = std::min(want, free);
    if (got == 0) return 0;
    if (in_flight_.compare_exchange_weak(cur, cur + got,
                                         std::memory_order_relaxed)) {
      InFlightGauge().Add(static_cast<double>(got));
      return got;
    }
  }
}

void QWorkerPool::ReleaseSlots(size_t n) {
  if (n == 0) return;
  in_flight_.fetch_sub(n, std::memory_order_relaxed);
  InFlightGauge().Add(-static_cast<double>(n));
}

size_t QWorkerPool::FreeSlots() const {
  if (options_.max_in_flight == 0) {
    return std::numeric_limits<size_t>::max();
  }
  size_t cur = in_flight_.load(std::memory_order_relaxed);
  return options_.max_in_flight > cur ? options_.max_in_flight - cur : 0;
}

ProcessedQuery QWorkerPool::MakeShedMarker(
    const workload::LabeledQuery& query) {
  ProcessedQuery shed;
  shed.query = query;
  shed.shed = true;
  shed.status = util::Status::ResourceExhausted("pool admission: shed");
  shed_count_.fetch_add(1, std::memory_order_relaxed);
  return shed;
}

ProcessedQuery QWorkerPool::MakeShed(const workload::LabeledQuery& query) {
  ProcessedQuery shed = MakeShedMarker(query);
  ShedCounter(options_.shed_policy).Increment();
  obs::FlightRecorder::Global().RecordInstant(
      obs::EventKind::kShed,
      options_.shed_policy == ShedPolicy::kRejectNew ? "reject_new"
                                                     : "drop_oldest");
  return shed;
}

ProcessedQuery QWorkerPool::Process(const workload::LabeledQuery& query) {
  if (admission_) {
    AdmitDecision decision = admission_->AdmitOne(query);
    if (!decision.admitted) return MakeShedMarker(query);
    if (TryAcquireSlots(1) == 0) {
      admission_->OnGlobalShed(query.account);
      return MakeShedMarker(query);
    }
    ProcessedQuery out;
    try {
      out = shards_[ShardOf(query)]->Process(query);
    } catch (...) {
      ReleaseSlots(1);
      admission_->Release(query.account);
      throw;
    }
    ReleaseSlots(1);
    admission_->Release(query.account);
    return out;
  }
  if (TryAcquireSlots(1) == 0) return MakeShed(query);
  ProcessedQuery out;
  try {
    out = shards_[ShardOf(query)]->Process(query);
  } catch (...) {
    ReleaseSlots(1);
    throw;
  }
  ReleaseSlots(1);
  return out;
}

std::vector<ProcessedQuery> QWorkerPool::ProcessBatch(
    const workload::Workload& batch) {
  std::vector<ProcessedQuery> out(batch.size());
  if (batch.empty()) return out;
  // The batch trace owns the trace id (unless an outer trace is already
  // active); the fan-out shards below adopt it via ParallelFor, so every
  // worker-thread span lands in this one cross-thread trace.
  obs::Trace trace("pool_process_batch");
  util::Stopwatch timer;
  // Admission pipeline (DESIGN.md §16): [tenant quota -> weighted
  // fairness ->] global slots -> shard fan-out. Shed queries are returned
  // IN PLACE (each marker at its query's original batch position, order
  // preserved) with `shed = true` and ResourceExhausted — never silently
  // dropped.
  std::vector<size_t> admitted_idx;
  admitted_idx.reserve(batch.size());
  if (admission_) {
    // Stages 1+2 — per-tenant quota and the weighted-fair split of the
    // free capacity. Sheds may land mid-batch (one tenant's tail is
    // another tenant's head), hence index lists instead of a range.
    std::vector<AdmitDecision> decisions =
        admission_->AdmitBatch(batch, FreeSlots());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (decisions[i].admitted) {
        admitted_idx.push_back(i);
      } else {
        out[i] = MakeShedMarker(batch[i]);
      }
    }
    // Stage 3 — the global reservation. It can still grant less than the
    // controller allocated when a concurrent batch raced the capacity
    // estimate; the overflow is shed per policy over the admitted subset
    // (reason=global), markers still at their original positions.
    size_t granted = TryAcquireSlots(admitted_idx.size());
    if (granted < admitted_idx.size()) {
      size_t overflow = admitted_idx.size() - granted;
      size_t drop_begin =
          options_.shed_policy == ShedPolicy::kRejectNew ? granted : 0;
      std::vector<size_t> kept;
      kept.reserve(granted);
      for (size_t k = 0; k < admitted_idx.size(); ++k) {
        size_t i = admitted_idx[k];
        if (k >= drop_begin && k < drop_begin + overflow) {
          admission_->OnGlobalShed(batch[i].account);
          out[i] = MakeShedMarker(batch[i]);
        } else {
          kept.push_back(i);
        }
      }
      admitted_idx.swap(kept);
    }
  } else {
    // Legacy global-only admission: reserve as many slots as fit, shed
    // the contiguous rest per policy (kRejectNew sheds the tail = the
    // newest arrivals; kDropOldest sheds the head = the oldest).
    size_t admitted = TryAcquireSlots(batch.size());
    size_t first = 0;  // first admitted index
    size_t last = batch.size();  // one past the last admitted index
    if (admitted < batch.size()) {
      if (options_.shed_policy == ShedPolicy::kRejectNew) {
        last = admitted;
        for (size_t i = last; i < batch.size(); ++i) {
          out[i] = MakeShed(batch[i]);
        }
      } else {
        first = batch.size() - admitted;
        for (size_t i = 0; i < first; ++i) out[i] = MakeShed(batch[i]);
      }
    }
    for (size_t i = first; i < last; ++i) admitted_idx.push_back(i);
  }
  if (admitted_idx.empty()) {
    BatchHistogram().Record(timer.ElapsedMillis());
    BatchCounter().Increment();
    return out;
  }
  // Partition the admitted queries so each shard's sub-stream keeps its
  // arrival order (windowed tasks depend on per-shard ordering), then one
  // parallel task per non-empty shard.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  {
    static obs::Histogram& hist = obs::StageHistogram("pool_partition");
    obs::Span span(&hist, "pool_partition");
    for (size_t i : admitted_idx) {
      by_shard[ShardOf(batch[i])].push_back(i);
    }
  }
  std::vector<size_t> live;
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (!by_shard[s].empty()) live.push_back(s);
  }
  // Predict traffic rides the interactive lane so a concurrent training
  // or advisor flood on the batch lane cannot queue ahead of it. When the
  // shards run under a per-Process deadline, the fan-out tasks carry the
  // same deadline so a task stuck behind higher lanes escalates instead
  // of burning its whole budget queued.
  util::ThreadPool::TaskOptions fan_out_opts;
  fan_out_opts.lane = util::Lane::kInteractive;
  if (options_.worker.deadline_ms > 0.0) {
    fan_out_opts.deadline_us =
        pool_->NowUs() +
        static_cast<int64_t>(options_.worker.deadline_ms * 1000.0);
  }
  pool_->ParallelFor(fan_out_opts, live.size(), [&](size_t t) {
    static obs::Histogram& fan_hist = obs::StageHistogram("pool_fan_out");
    obs::Span fan_span(&fan_hist, "pool_fan_out");
    size_t s = live[t];
    QWorker& shard = *shards_[s];
    // A shard task that dies (injected fault or escaped exception) must
    // not lose its queries: every index gets a status, and the other
    // shards' tasks are unaffected.
    util::Status task_status = util::MaybeFail("pool.fan_out");
    if (task_status.ok()) {
      for (size_t i : by_shard[s]) {
        try {
          out[i] = shard.Process(batch[i]);
        } catch (const std::exception& e) {
          out[i].query = batch[i];
          out[i].status = util::Status::Internal(
              std::string("shard fan-out: ") + e.what());
          FanOutErrorsCounter().Increment();
        } catch (...) {
          out[i].query = batch[i];
          out[i].status = util::Status::Internal("shard fan-out threw");
          FanOutErrorsCounter().Increment();
        }
      }
    } else {
      FanOutErrorsCounter().Increment();
      for (size_t i : by_shard[s]) {
        out[i].query = batch[i];
        out[i].status = task_status;
      }
    }
  });
  ReleaseSlots(admitted_idx.size());
  if (admission_) {
    // Per-tenant release, batched per account to keep the controller's
    // lock off the per-query path.
    std::map<std::string, size_t> per_account;
    for (size_t i : admitted_idx) ++per_account[batch[i].account];
    for (const auto& [account, n] : per_account) {
      admission_->Release(account, n);
    }
  }
  BatchHistogram().Record(timer.ElapsedMillis());
  BatchCounter().Increment();
  return out;
}

size_t QWorkerPool::processed_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->processed_count();
  return total;
}

std::vector<ShardStats> QWorkerPool::Stats(size_t lint_top_n) const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardStats one;
    one.shard = s;
    one.processed = shards_[s]->processed_count();
    one.num_classifiers = shards_[s]->num_classifiers();
    one.histogram = shards_[s]->latency_snapshot();
    one.latency.count = one.histogram.count;
    // An empty histogram snapshot reports min = 0; leave the stats
    // sentinel (+inf) in place so merges can't absorb a fake 0 minimum.
    if (one.histogram.count > 0) one.latency.min_ms = one.histogram.min;
    one.latency.max_ms = one.histogram.max;
    one.latency.total_ms = one.histogram.sum;
    one.p50_ms = one.histogram.p50();
    one.p90_ms = one.histogram.p90();
    one.p99_ms = one.histogram.p99();
    one.lint_diagnostics = shards_[s]->lint_diagnostic_count();
    one.lint_templates_dropped = shards_[s]->lint_templates_dropped();
    one.top_offending_templates = shards_[s]->TopOffendingTemplates(lint_top_n);
    one.embed_cache = shards_[s]->embed_cache_stats();
    stats.push_back(one);
  }
  return stats;
}

std::vector<LintTemplateStats> QWorkerPool::TopOffendingTemplates(
    size_t n) const {
  // Merge per-shard aggregates by fingerprint: under round-robin one
  // template's instances spread across shards and must sum back together.
  std::map<std::string, LintTemplateStats> merged;
  for (const auto& shard : shards_) {
    for (LintTemplateStats& t :
         shard->TopOffendingTemplates(std::numeric_limits<size_t>::max())) {
      auto it = merged.find(t.fingerprint);
      if (it == merged.end()) {
        merged.emplace(t.fingerprint, std::move(t));
      } else {
        // Total merge — all fields, one function (LintTemplateStats::
        // Merge), so the cross-shard view can never drift field-by-field
        // from the struct definition.
        it->second.Merge(t);
      }
    }
  }
  std::vector<LintTemplateStats> out;
  out.reserve(merged.size());
  for (auto& [fingerprint, stats] : merged) out.push_back(std::move(stats));
  std::sort(out.begin(), out.end(),
            [](const LintTemplateStats& a, const LintTemplateStats& b) {
              if (a.diagnostics != b.diagnostics) {
                return a.diagnostics > b.diagnostics;
              }
              return a.instances > b.instances;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

size_t QWorkerPool::lint_diagnostic_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->lint_diagnostic_count();
  return total;
}

size_t QWorkerPool::lint_templates_dropped() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->lint_templates_dropped();
  return total;
}

std::vector<std::pair<std::string, CircuitBreaker::State>>
QWorkerPool::BreakerStates() const {
  std::vector<std::pair<std::string, CircuitBreaker::State>> out;
  for (const auto& shard : shards_) {
    auto states = shard->BreakerStates();
    out.insert(out.end(), states.begin(), states.end());
  }
  return out;
}

obs::HistogramSnapshot QWorkerPool::MergedLatency() const {
  obs::HistogramSnapshot merged;
  for (const auto& shard : shards_) {
    merged.Merge(shard->latency_snapshot());
  }
  return merged;
}

embed::EmbedCacheStats QWorkerPool::MergedEmbedCacheStats() const {
  embed::EmbedCacheStats merged;
  for (const auto& shard : shards_) {
    merged.Merge(shard->embed_cache_stats());
  }
  return merged;
}

}  // namespace querc::core
