#ifndef QUERC_UTIL_FAILPOINT_H_
#define QUERC_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace querc::util {

/// Deterministic, process-wide fault injection ("failpoints"). Service code
/// plants named injection sites on its failure-prone paths:
///
///   QUERC_RETURN_IF_ERROR(util::MaybeFail("qworker.sink_database"));
///
/// Disarmed (the production state) this costs one relaxed atomic load — no
/// map lookup, no lock, no string construction. Tests, the `querc chaos`
/// subcommand, and the env var `QUERC_FAILPOINTS` arm sites with actions:
///
///   error  -> return a non-OK Status (default Unavailable)
///   delay  -> sleep for a fixed number of milliseconds, then succeed
///   crash  -> std::abort() (process-death drills; never used in tests)
///
/// Env syntax (semicolon-separated, applied once at process start):
///
///   QUERC_FAILPOINTS="qworker.sink_database=error;classifier=delay:5"
///   QUERC_FAILPOINTS="qworker.sink_database=error:Internal*3"
///
/// `*N` limits the action to the next N hits ("fail N times then
/// succeed"): the point disarms itself after the Nth trigger, which is how
/// chaos scenarios model transient outages deterministically.
enum class FailAction {
  kError,
  kDelay,
  kCrash,
};

/// What an armed failpoint does when hit.
struct FailpointSpec {
  FailAction action = FailAction::kError;
  /// For kError: the status code to return.
  StatusCode code = StatusCode::kUnavailable;
  /// For kError: the message; "" -> "failpoint <name>".
  std::string message;
  /// For kDelay: how long to block before succeeding.
  double delay_ms = 0.0;
  /// Trigger at most this many times, then self-disarm; -1 = forever.
  int64_t count = -1;
};

/// One armed point's observable state (for `querc stats` / debugging).
struct FailpointInfo {
  std::string name;
  FailpointSpec spec;
  uint64_t hits = 0;  ///< times the action actually fired
};

class Failpoints {
 public:
  Failpoints(const Failpoints&) = delete;
  Failpoints& operator=(const Failpoints&) = delete;

  /// The process-wide registry. First use applies QUERC_FAILPOINTS.
  static Failpoints& Global();

  /// Arms (or re-arms, resetting hit counts) `name` with `spec`.
  void Arm(const std::string& name, FailpointSpec spec) EXCLUDES(mu_);

  /// Disarms `name`; returns whether it was armed.
  bool Disarm(const std::string& name) EXCLUDES(mu_);

  /// Disarms everything (tests call this between cases).
  void DisarmAll() EXCLUDES(mu_);

  /// Parses the env/CLI syntax above and arms every listed point.
  Status ParseAndArm(std::string_view spec_list);

  /// Times `name`'s action has fired since it was last armed (0 while
  /// disarmed — the fast path does not count).
  uint64_t hits(const std::string& name) const EXCLUDES(mu_);

  /// Snapshot of every armed point, name-sorted.
  std::vector<FailpointInfo> Armed() const EXCLUDES(mu_);

  /// True when at least one failpoint is armed anywhere in the process.
  /// This is the only check on the hot path.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path: looks `name` up and runs its action. Called only when
  /// AnyArmed(); prefer `MaybeFail` below. The armed spec is copied out
  /// under the lock and acted on after release, so delay/crash actions
  /// never run with mu_ held.
  Status Evaluate(std::string_view name) EXCLUDES(mu_);

 private:
  Failpoints();

  struct Armed_ {
    FailpointSpec spec;
    int64_t remaining = -1;
    uint64_t hits = 0;
  };

  mutable Mutex mu_{LockRank::kFailpoints, "failpoints.mu"};
  std::map<std::string, Armed_, std::less<>> points_ GUARDED_BY(mu_);
  static std::atomic<int> armed_count_;
};

/// The injection-site entry point. Returns OK (for free) unless `name` is
/// armed, in which case the armed action runs: OK after a delay, a non-OK
/// Status for error actions, no return for crash.
inline Status MaybeFail(std::string_view name) {
  if (!Failpoints::AnyArmed()) return Status::OK();
  return Failpoints::Global().Evaluate(name);
}

}  // namespace querc::util

#endif  // QUERC_UTIL_FAILPOINT_H_
