#ifndef QUERC_QUERC_SECURITY_AUDIT_H_
#define QUERC_QUERC_SECURITY_AUDIT_H_

#include <memory>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "util/status.h"
#include "workload/workload.h"

namespace querc::core {

/// Security auditing (§4, §5.2): predict the issuing user from query
/// syntax alone; when the prediction disagrees (with enough of the forest
/// behind it), the query is flagged as anomalous — a possible compromised
/// account.
class SecurityAuditor {
 public:
  struct Options {
    /// Minimum predicted-class vote fraction for a disagreement to become
    /// a flag (low-confidence disagreements are noise, not anomalies).
    double min_confidence = 0.5;
    ml::RandomForestClassifier::Options forest;
  };

  struct Flag {
    size_t query_index = 0;
    std::string actual_user;
    std::string predicted_user;
    double confidence = 0.0;
  };

  SecurityAuditor(std::shared_ptr<const embed::Embedder> embedder,
                  const Options& options)
      : embedder_(std::move(embedder)),
        options_(options),
        forest_(options.forest) {}

  /// Fits the user model on historical (trusted) queries.
  util::Status Train(const workload::Workload& history);

  /// Predicted user for one query (empty before Train()).
  std::string PredictUser(const workload::LabeledQuery& query) const;

  /// Audits a batch: returns flags for queries whose predicted user
  /// confidently disagrees with the recorded user, in input order.
  std::vector<Flag> Audit(const workload::Workload& batch) const;

  const ml::LabelEncoder& users() const { return users_; }

 private:
  std::shared_ptr<const embed::Embedder> embedder_;
  Options options_;
  ml::RandomForestClassifier forest_;
  ml::LabelEncoder users_;
  bool trained_ = false;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_SECURITY_AUDIT_H_
