file(REMOVE_RECURSE
  "CMakeFiles/test_sql_normalizer.dir/test_sql_normalizer.cc.o"
  "CMakeFiles/test_sql_normalizer.dir/test_sql_normalizer.cc.o.d"
  "test_sql_normalizer"
  "test_sql_normalizer.pdb"
  "test_sql_normalizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_normalizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
