#ifndef QUERC_QUERC_QWORKER_H_
#define QUERC_QUERC_QWORKER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "embed/embed_cache.h"
#include "obs/metrics.h"
#include "querc/admission.h"
#include "querc/classifier.h"
#include "querc/resilience.h"
#include "sql/lint/engine.h"
#include "util/atomic_shared_ptr.h"
#include "util/concurrent_aggregator.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/status.h"
#include "workload/workload.h"

namespace querc::core {

/// A query annotated with the labels Querc's classifiers predicted, plus
/// the per-query fault disposition: a query is never silently dropped —
/// anything that went wrong on its way through the worker is recorded
/// here (and mirrored in counters).
struct ProcessedQuery {
  workload::LabeledQuery query;
  /// task name -> predicted label.
  std::map<std::string, std::string> predictions;
  /// Static-analysis findings from the worker's lint stage (empty when the
  /// stage is disabled or the query is clean).
  std::vector<sql::lint::Diagnostic> diagnostics;

  /// Overall disposition. Non-OK only when the query never reached (or
  /// never completed) a worker: shed at pool admission, or the worker
  /// failed outright. Sink/classifier degradation is reported separately
  /// below — the query itself still flowed.
  util::Status status;
  /// Outcome of the database forward (OK when disabled or no sink set).
  util::Status database_status;
  /// Outcome of the training tee (OK when no sink set).
  util::Status training_status;
  /// True when the pool shed this query at admission (status is
  /// ResourceExhausted and no worker ever saw it).
  bool shed = false;
  /// True when the per-Process deadline expired before every classifier
  /// ran: `predictions` is the partial prefix.
  bool deadline_exceeded = false;
  /// Tasks answered by the deployed *fallback* classifier because the
  /// primary's breaker was open or the primary failed.
  std::vector<std::string> degraded_tasks;
  /// Tasks with no prediction at all (breaker open / primary failed, and
  /// no fallback deployed).
  std::vector<std::string> skipped_tasks;

  /// True when nothing degraded anywhere along the path.
  bool clean() const {
    return status.ok() && database_status.ok() && training_status.ok() &&
           !shed && !deadline_exceeded && degraded_tasks.empty() &&
           skipped_tasks.empty();
  }
};

/// Aggregated lint outcome for one normalized query template, tracked per
/// worker so the pool can surface the worst offenders per shard.
struct LintTemplateStats {
  std::string fingerprint;
  std::string example_text;  // raw text of the first offending instance
  size_t instances = 0;      // offending queries seen for this template
  size_t diagnostics = 0;    // total diagnostics across those instances

  /// Total merge: *every* field participates (counters sum; fingerprint
  /// and example_text are kept if set, adopted otherwise). All cross-shard
  /// merging goes through this one function so a new field can never be
  /// silently dropped by a field-by-field call site.
  void Merge(const LintTemplateStats& other);
};

/// Per-worker latency accounting for the throughput bench and the pool's
/// per-shard stats. Times cover the full Process() call (predict + window
/// + sinks), in wall-clock milliseconds. Since the obs subsystem landed
/// this is a thin view over the worker's latency histogram (see
/// QWorker::latency_snapshot() for percentiles); it is kept so existing
/// callers migrate incrementally.
struct LatencyStats {
  size_t count = 0;
  /// Idles at +inf until the first sample so an empty or merged view can
  /// never report a fake 0 ms minimum; display through min().
  double min_ms = std::numeric_limits<double>::infinity();
  double max_ms = 0.0;
  double total_ms = 0.0;

  double mean_ms() const {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
  /// Display-safe minimum: 0.0 while empty (count == 0 guard).
  double min() const { return count == 0 ? 0.0 : min_ms; }

  /// Pointwise merge; an empty side contributes nothing (in particular
  /// not its sentinel min).
  void Merge(const LatencyStats& other);
};

/// The per-application stream worker of Figure 1: runs every deployed
/// classifier over each arriving query, forwards the query downstream (to
/// the database — here a callback), and tees labeled queries to the
/// training module's collector. QWorkers hold only a small bounded window
/// of recent queries (for windowed tasks such as recommendation), so they
/// can be load-balanced and parallelized in the usual ways.
///
/// Fault model: Querc may sit on the database's critical path (§2's
/// query-rewriting deployment), so a QWorker degrades instead of failing:
/// sink exceptions become util::Status (with capped-backoff retries under
/// a per-worker retry budget and a per-sink circuit breaker), a tripped
/// classifier breaker switches that task to a deployed fallback
/// classifier (or skips it with a counter), the per-Process deadline
/// forwards the query with partial predictions rather than blocking, and
/// lint auto-disables under deadline pressure. Every degradation bumps a
/// counter — no query outcome is silent.
///
/// Concurrency model: `Process`/`ProcessBatch` may be called from many
/// threads concurrently with `Deploy`/`Undeploy`/`DeployAll` and the sink
/// setters. The deployed classifier set is an immutable snapshot map
/// behind a util::AtomicSharedPtr slot: writers copy-on-write under a
/// mutex and publish the new map in one store, readers take one snapshot
/// load per query — so every query sees a *consistent* classifier set,
/// never a half-applied deployment, and a deployment never blocks on
/// in-flight queries (it swaps the pointer and returns; old snapshots die
/// with their last reader). Fallback classifiers and per-task breakers
/// are published the same way. Sinks installed via the setters must
/// themselves be thread-safe if the worker is shared across threads.
class QWorker {
 public:
  struct Options {
    std::string application;
    /// Bounded recent-query window retained for windowed labeling tasks.
    size_t window_size = 32;
    /// When false (the "forked" deployment of §2), queries are NOT
    /// forwarded to the database — Querc stays off the critical path.
    bool forward_to_database = true;
    /// Run the static-analysis lint stage on every query (per-rule hit
    /// counters + querc_stage_ms{stage=lint}). Cheap: one lenient lex +
    /// token scans, no allocation on clean queries beyond the token list.
    bool enable_lint = true;
    /// Offending templates tracked per worker (bounds lint memory). When
    /// the cap is reached a *new* template evicts the least-instances
    /// entry instead of being refused, and every displaced template bumps
    /// querc_lint_templates_dropped_total — a late-arriving hot offender
    /// always surfaces. 0 disables tracking (every offender counted as
    /// dropped).
    size_t lint_template_cap = 256;

    /// Template-keyed embedding cache capacity (entries); 0 disables the
    /// cache entirely (every query re-runs inference). Keys are the
    /// normalized fingerprints the embedders consume, so cached vectors
    /// are bit-identical to recomputed ones — see DESIGN.md §12.
    size_t embed_cache_capacity = 4096;
    /// Lock shards for the embedding cache (rounded to a power of two).
    size_t embed_cache_shards = 8;

    /// Wall-clock budget for one Process call in milliseconds; 0 =
    /// unlimited. On expiry the remaining classifiers are skipped and the
    /// query is forwarded with partial predictions
    /// (querc_deadline_exceeded_total).
    double deadline_ms = 0.0;
    /// Under a deadline, lint is auto-disabled once less than this
    /// fraction of the budget remains (querc_lint_autodisabled_total).
    double lint_min_deadline_fraction = 0.5;
    /// Sink retry schedule (capped exponential backoff, decorrelated
    /// jitter). Attempts beyond the first also consume the worker's
    /// retry budget, so retries cannot amplify an outage.
    RetryOptions sink_retry{};
    RetryBudgetOptions retry_budget{};
    /// Breaker template stamped per sink and per classifier task.
    CircuitBreakerOptions breaker{};
    /// When false, no circuit breakers are created at all (sinks and
    /// classifiers always run; retries/deadline still apply).
    bool enable_breakers = true;
    /// Scope the SINK breakers per account: breaker keys gain the
    /// account dimension ("<application>:sink_database:<account>"), so
    /// one tenant's failing sink trips only that tenant's breaker while
    /// every other tenant keeps flowing. Task breakers stay per task —
    /// a classifier fault is model health, not tenant behavior. Requires
    /// enable_breakers.
    bool per_tenant_sink_breakers = false;
    /// Bound on resident per-tenant sink breakers per sink (evict-least,
    /// closed-first; see TenantBreakerMap).
    size_t tenant_breaker_cap = 64;
  };

  using DatabaseSink = std::function<void(const workload::LabeledQuery&)>;
  using TrainingSink = std::function<void(const ProcessedQuery&)>;
  using ClassifierMap =
      std::map<std::string, std::shared_ptr<const Classifier>>;
  using BreakerMap =
      std::map<std::string, std::shared_ptr<CircuitBreaker>>;

  explicit QWorker(const Options& options);

  /// Installs (or replaces) a classifier under its task name. Deployment
  /// of retrained models is an atomic snapshot swap; in-flight queries
  /// keep the classifier set they started with.
  void Deploy(std::shared_ptr<const Classifier> classifier)
      EXCLUDES(deploy_mu_);

  /// Installs several classifiers in ONE snapshot swap: no concurrent
  /// query can observe some of them deployed and others not.
  void DeployAll(
      const std::vector<std::shared_ptr<const Classifier>>& classifiers)
      EXCLUDES(deploy_mu_);

  /// Removes a classifier by task name; returns whether it existed.
  bool Undeploy(const std::string& task_name) EXCLUDES(deploy_mu_);

  /// Installs a (typically cheaper) fallback classifier for its task.
  /// When the primary's breaker is open or the primary errors, the task
  /// degrades to the fallback instead of going unanswered — the
  /// Query2Vec result that labeling quality degrades gracefully with
  /// cheaper embedders makes this principled.
  void DeployFallback(std::shared_ptr<const Classifier> classifier)
      EXCLUDES(deploy_mu_);

  /// Removes a fallback by task name; returns whether it existed.
  bool UndeployFallback(const std::string& task_name) EXCLUDES(deploy_mu_);

  void set_database_sink(DatabaseSink sink);
  void set_training_sink(TrainingSink sink);

  /// Processes one arriving query through every deployed classifier.
  /// Thread-safe; may race with deployments (see class comment). Never
  /// throws for sink/classifier/deadline faults — those are reported in
  /// the returned ProcessedQuery and in counters.
  ProcessedQuery Process(const workload::LabeledQuery& query);

  /// Processes a batch ("query(X, t)" in the paper's notation). One
  /// poisoned query cannot lose the batch: residual exceptions are caught
  /// per query (status = Internal) and the rest of the batch proceeds.
  std::vector<ProcessedQuery> ProcessBatch(const workload::Workload& batch);

  /// A snapshot copy of the bounded window of most recent queries seen.
  std::deque<workload::LabeledQuery> window() const EXCLUDES(window_mu_);

  /// The current deployed-classifier snapshot.
  std::shared_ptr<const ClassifierMap> classifiers() const;

  /// The current fallback-classifier snapshot.
  std::shared_ptr<const ClassifierMap> fallbacks() const;

  const std::string& application() const { return options_.application; }
  size_t num_classifiers() const;
  size_t processed_count() const {
    return processed_count_.load(std::memory_order_relaxed);
  }
  /// Latency accounting since construction (min/mean/max per Process) —
  /// a compatibility view over latency_snapshot().
  LatencyStats latency() const;

  /// Full latency histogram snapshot (count, sum, min/max, p50/p90/p99)
  /// since construction. Lock-free to read; the record side is atomic
  /// bucket increments on the Process hot path.
  obs::HistogramSnapshot latency_snapshot() const {
    return latency_hist_.Snapshot();
  }

  /// Every breaker this worker owns (sinks first, then deployed tasks)
  /// with its current state, for `querc stats` and the chaos driver.
  std::vector<std::pair<std::string, CircuitBreaker::State>> BreakerStates()
      const;

  /// Total lint diagnostics emitted by this worker since construction.
  size_t lint_diagnostic_count() const {
    return lint_diagnostic_count_.load(std::memory_order_relaxed);
  }

  /// The `n` templates with the most lint diagnostics, worst first.
  std::vector<LintTemplateStats> TopOffendingTemplates(size_t n) const;

  /// Offending templates displaced (or refused, when lint_template_cap is
  /// 0) by the bounded tracker since construction. Also exported as
  /// querc_lint_templates_dropped_total.
  size_t lint_templates_dropped() const {
    return lint_templates_dropped_.load(std::memory_order_relaxed);
  }

  /// The lint engine this worker runs (builtin rules, worker dialect).
  const sql::lint::LintEngine& lint_engine() const { return lint_engine_; }

  /// Counters for this worker's template-keyed embedding cache (all zeros
  /// when the cache is disabled via embed_cache_capacity = 0).
  embed::EmbedCacheStats embed_cache_stats() const {
    return embed_cache_ ? embed_cache_->Stats() : embed::EmbedCacheStats{};
  }

  /// The worker's embedding cache, or null when disabled.
  embed::EmbeddingCache* embed_cache() const { return embed_cache_.get(); }

 private:
  /// Runs `call` through the sink fault machinery: breaker gate,
  /// failpoint, exception→Status, retries under the budget and deadline.
  util::Status InvokeSink(const char* sink_label,
                          std::string_view failpoint_name,
                          CircuitBreaker* breaker, const Deadline& deadline,
                          const std::function<void()>& call);

  Options options_;
  /// Immutable published snapshot; writers serialize on deploy_mu_ and
  /// copy-on-write, readers snapshot-load. Never null.
  util::AtomicSharedPtr<const ClassifierMap> classifiers_;
  /// Fallbacks and per-task breakers: same publication discipline.
  util::AtomicSharedPtr<const ClassifierMap> fallbacks_;
  util::AtomicSharedPtr<const BreakerMap> task_breakers_;
  /// Serializes copy-on-write deployments. Held across breaker
  /// construction (which registers metrics series) and the snapshot
  /// publish — hence rank kQWorkerDeploy below kBreaker,
  /// kAtomicSharedPtr, and kMetricsRegistry. The snapshot pointers above
  /// are not GUARDED_BY it: readers go straight through AtomicSharedPtr.
  util::Mutex deploy_mu_{util::LockRank::kQWorkerDeploy,
                         "qworker.deploy_mu"};
  /// Sinks are published the same way so setters can race with Process.
  util::AtomicSharedPtr<const DatabaseSink> database_;
  util::AtomicSharedPtr<const TrainingSink> training_;
  mutable util::Mutex window_mu_{util::LockRank::kQWorkerWindow,
                                 "qworker.window_mu"};
  std::deque<workload::LabeledQuery> window_ GUARDED_BY(window_mu_);
  std::atomic<size_t> processed_count_{0};
  /// Per-worker Process latency; also mirrored into the global registry's
  /// querc_qworker_process_ms so exporters see the service-wide view.
  obs::Histogram latency_hist_;

  /// Sink breakers (one per sink, named "<application>:sink_*").
  std::unique_ptr<CircuitBreaker> database_breaker_;  // null when disabled
  std::unique_ptr<CircuitBreaker> training_breaker_;
  /// Per-tenant sink breakers (null unless per_tenant_sink_breakers):
  /// bounded account->breaker maps that REPLACE the worker-level sink
  /// breakers on the Process path when active.
  std::unique_ptr<TenantBreakerMap> database_tenant_breakers_;
  std::unique_ptr<TenantBreakerMap> training_tenant_breakers_;
  RetryPolicy sink_retry_;
  RetryBudget retry_budget_;

  /// Lint stage. The engine is immutable after construction (safe to call
  /// from every processing thread); per-rule counters are resolved once
  /// here so the hot path touches only counter atomics.
  sql::lint::LintEngine lint_engine_;
  std::map<std::string, obs::Counter*> lint_counters_;
  std::atomic<size_t> lint_diagnostic_count_{0};
  /// Per-template offender tracking: lock-free concurrent aggregation
  /// (count = instances, weight = diagnostics, tag = example text), with
  /// evict-least + drop-counting bounded-capacity semantics replacing the
  /// old mutexed map that silently refused templates past the cap.
  util::ConcurrentAggregator lint_templates_;
  std::atomic<size_t> lint_templates_dropped_{0};

  /// Template-keyed embedding cache for the once-per-query shared
  /// embedding fast path; null when disabled. Thread-safe internally.
  std::unique_ptr<embed::EmbeddingCache> embed_cache_;
};

}  // namespace querc::core

#endif  // QUERC_QUERC_QWORKER_H_
