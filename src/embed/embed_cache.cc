#include "embed/embed_cache.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace querc::embed {

namespace {

/// Service-wide cache counters (all caches sum into these); per-cache
/// numbers come from Stats(). Resolved once, then only atomics.
obs::Counter& HitsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_embed_cache_hits_total", {},
      "Embedding cache hits (including coalesced single-flight waits)");
  return counter;
}

obs::Counter& MissesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_embed_cache_misses_total", {},
      "Embedding cache misses (each ran one underlying Embed)");
  return counter;
}

obs::Counter& EvictionsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_embed_cache_evictions_total", {},
      "Embedding cache LRU evictions");
  return counter;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void EmbedCacheStats::Merge(const EmbedCacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  size += other.size;
  capacity += other.capacity;
}

EmbeddingCache::EmbeddingCache(const Options& options) {
  size_t num_shards = RoundUpPow2(options.shards == 0 ? 1 : options.shards);
  size_t capacity = options.capacity == 0 ? 1 : options.capacity;
  // Don't spread a tiny capacity over many near-empty shards.
  while (num_shards > 1 && capacity < num_shards) num_shards >>= 1;
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string EmbeddingCache::KeyFor(const Embedder& embedder,
                                   const std::vector<std::string>& words) {
  size_t total = 24;
  for (const std::string& w : words) total += w.size() + 1;
  std::string key;
  key.reserve(total);
  key += std::to_string(embedder.instance_id());
  key += ':';
  for (const std::string& w : words) {
    key += w;
    key += ' ';
  }
  return key;
}

EmbeddingCache::Shard& EmbeddingCache::ShardFor(const std::string& key) {
  // shards_.size() is a power of two.
  return *shards_[util::Fnv1a64(key) & (shards_.size() - 1)];
}

void EmbeddingCache::InsertLocked(
    Shard& shard, const std::string& key,
    const std::shared_ptr<const nn::Vec>& value) {
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // A racing compute already published; keep the resident entry (the
    // values are identical — same key, deterministic Embed).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  shard.lru.push_front(key);
  shard.map.emplace(key, Shard::Entry{value, shard.lru.begin()});
  while (shard.map.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back());
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    EvictionsCounter().Increment();
  }
}

std::shared_ptr<const nn::Vec> EmbeddingCache::GetOrCompute(
    const std::string& key, const std::function<nn::Vec()>& compute) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<InFlight> flight;
  bool owner = false;
  {
    util::MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      HitsCounter().Increment();
      return it->second.value;
    }
    auto fit = shard.in_flight.find(key);
    if (fit != shard.in_flight.end()) {
      flight = fit->second;
    } else {
      flight = std::make_shared<InFlight>();
      flight->owner_ctx = obs::CurrentContext();
      shard.in_flight.emplace(key, flight);
      owner = true;
    }
  }

  if (!owner) {
    // Single-flight: wait for the computing thread and share its result.
    // The wait is a real stage of this query's latency — span it, and
    // journal a marker when the compute we coalesced onto belongs to a
    // *different* trace (the cross-query dependency a per-query view
    // would otherwise hide).
    static obs::Histogram& wait_hist = obs::StageHistogram("embed_cache_wait");
    obs::Span wait_span(&wait_hist, "embed_cache_wait");
    util::MutexLock lock(&flight->mu);
    flight->cv.Wait(flight->mu, [&]() REQUIRES(flight->mu) {
      flight->mu.AssertHeld();
      return flight->done;
    });
    obs::TraceContext self = obs::CurrentContext();
    if (flight->owner_ctx.valid() && self.valid() &&
        flight->owner_ctx.trace_id != self.trace_id) {
      obs::FlightRecorder::Global().RecordInstant(obs::EventKind::kSpan,
                                                  "embed_coalesced");
    }
    if (!flight->failed) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      HitsCounter().Increment();
      return flight->value;
    }
    // The owner's compute threw; fall back to computing for ourselves
    // (uncached — if this throws too, the caller sees it directly).
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    MissesCounter().Increment();
    return std::make_shared<const nn::Vec>(compute());
  }

  shard.misses.fetch_add(1, std::memory_order_relaxed);
  MissesCounter().Increment();
  std::shared_ptr<const nn::Vec> value;
  try {
    value = std::make_shared<const nn::Vec>(compute());
  } catch (...) {
    {
      util::MutexLock lock(&shard.mu);
      shard.in_flight.erase(key);
    }
    {
      util::MutexLock lock(&flight->mu);
      flight->done = true;
      flight->failed = true;
    }
    flight->cv.NotifyAll();
    throw;
  }
  {
    util::MutexLock lock(&shard.mu);
    InsertLocked(shard, key, value);
    shard.in_flight.erase(key);
  }
  {
    util::MutexLock lock(&flight->mu);
    flight->done = true;
    flight->value = value;
  }
  flight->cv.NotifyAll();
  return value;
}

std::shared_ptr<const nn::Vec> EmbeddingCache::Peek(const std::string& key) {
  Shard& shard = ShardFor(key);
  util::MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.value;
}

EmbedCacheStats EmbeddingCache::Stats() const {
  // Two-phase: snapshot each shard's striped counters into a shard-local
  // view, then merge centrally. The record side never touches a shared
  // stats atomic, so shards do not contend on accounting.
  EmbedCacheStats merged;
  for (const auto& shard : shards_) {
    EmbedCacheStats one;
    one.hits = shard->hits.load(std::memory_order_relaxed);
    one.misses = shard->misses.load(std::memory_order_relaxed);
    one.evictions = shard->evictions.load(std::memory_order_relaxed);
    {
      util::MutexLock lock(&shard->mu);
      one.size = shard->map.size();
    }
    one.capacity = per_shard_capacity_;
    merged.Merge(one);
  }
  return merged;
}

size_t EmbeddingCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    total += shard->map.size();
  }
  return total;
}

void EmbeddingCache::Clear() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(&shard->mu);
    shard->map.clear();
    shard->lru.clear();
  }
}

}  // namespace querc::embed
