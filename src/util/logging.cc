#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

namespace querc::util {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_timestamps{false};
std::atomic<bool> g_thread_ids{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// "2026-08-06T12:34:56.789Z" for the current wall-clock instant.
std::string IsoTimestamp() {
  using std::chrono::system_clock;
  auto now = system_clock::now();
  std::time_t seconds = system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogTimestamps(bool enabled) {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

void SetLogThreadIds(bool enabled) {
  g_thread_ids.store(enabled, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    if (g_timestamps.load(std::memory_order_relaxed)) {
      stream_ << IsoTimestamp() << " ";
    }
    if (g_thread_ids.load(std::memory_order_relaxed)) {
      stream_ << "[tid " << std::this_thread::get_id() << "] ";
    }
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One fwrite of the complete record (newline included) keeps
    // concurrent writers — e.g. QWorkerPool shards — from interleaving
    // fragments of each other's lines; POSIX stdio locks the stream per
    // call, so the record lands contiguously.
    stream_ << "\n";
    std::string record = stream_.str();
    std::fwrite(record.data(), 1, record.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace internal_logging
}  // namespace querc::util
