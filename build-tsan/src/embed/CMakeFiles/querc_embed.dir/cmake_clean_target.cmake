file(REMOVE_RECURSE
  "libquerc_embed.a"
)
