// Tenant-isolation benchmark: one aggressor account floods a sharded
// QWorkerPool (slow backend, oversized batches) at a FIXED load while a
// victim account sends steady inline traffic; the victim's successful-
// only p99 and shed count are measured twice — isolation OFF (global
// slots only) and isolation ON (per-account token quota + weighted-fair
// admission + per-tenant sink breakers) — and exported to
// BENCH_tenant.json.
//
// With --smoke the run is truncated for CI and the process fails unless
// the isolation CONTRACT holds: with isolation on, the victim is never
// shed, the aggressor is shed at a positive rate, and every submitted
// query is accounted for (processed + shed, no silent drops). The perf
// gate — isolated victim p99 no worse than the unisolated p99, and the
// unisolated run actually shedding the victim — runs only when
// --no-perf-gate is absent: sanitizer builds distort timings, so
// tools/verify_matrix.sh passes --no-perf-gate for asan/tsan/ubsan
// (contract-only under sanitizers), matching bench_aggregator.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "embed/feature_embedder.h"
#include "ml/knn.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "querc/classifier.h"
#include "querc/qworker_pool.h"
#include "util/stopwatch.h"
#include "workload/workload.h"

namespace querc::bench {
namespace {

using querc::core::QWorkerPool;

workload::LabeledQuery MakeQuery(const std::string& account) {
  workload::LabeledQuery q;
  q.text = "SELECT a, b FROM t WHERE x = 1";
  q.user = "u1";
  q.account = account;
  return q;
}

std::shared_ptr<querc::core::Classifier> TrainedClassifier() {
  auto embedder = std::make_shared<embed::FeatureEmbedder>(
      embed::FeatureEmbedder::Options{});
  auto classifier = std::make_shared<querc::core::Classifier>(
      "user", embedder,
      std::make_unique<ml::KnnClassifier>(ml::KnnClassifier::Options{.k = 1}));
  workload::Workload history;
  for (int i = 0; i < 8; ++i) {
    workload::LabeledQuery q = MakeQuery("acct");
    q.user = "alice";
    history.Add(q);
    q.text = "SELECT c FROM u, v WHERE u.k = v.k";
    q.user = "bob";
    history.Add(q);
  }
  util::Status status = classifier->Train(history, workload::UserOf);
  if (!status.ok()) std::abort();  // tiny fixed corpus; cannot fail
  return classifier;
}

struct RunResult {
  double victim_p99_ms = 0.0;     // successful (non-shed) victims only
  size_t victim_samples = 0;      // successful victim queries measured
  size_t victim_shed = 0;
  size_t aggressor_submitted = 0;
  size_t aggressor_shed = 0;
  size_t silent_drops = 0;

  double aggressor_shed_rate() const {
    return aggressor_submitted == 0
               ? 0.0
               : static_cast<double>(aggressor_shed) /
                     static_cast<double>(aggressor_submitted);
  }
};

double Percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

/// One configuration at a fixed aggressor load: `flood_threads` threads
/// each loop ProcessBatch(32 aggressor queries) against a ~200us-slow
/// aggressor backend while the main thread measures `victim_queries`
/// inline victim calls.
RunResult RunScenario(bool isolation, size_t victim_queries) {
  QWorkerPool::Options options;
  options.application = isolation ? "fair_on" : "fair_off";
  options.num_shards = 2;
  options.partition = QWorkerPool::Partition::kRoundRobin;
  options.max_in_flight = 16;
  options.shed_policy = QWorkerPool::ShedPolicy::kRejectNew;
  if (isolation) {
    options.enable_tenant_admission = true;
    // Victims effectively unmetered; the aggressor gets a tight bucket,
    // so the admission stage (not the global slots) absorbs its flood.
    options.admission.default_quota.burst = 0.0;
    options.admission.tenants["aggressor"] = {/*burst=*/4.0,
                                              /*rate_per_sec=*/2000.0,
                                              /*weight=*/1.0};
    options.worker.per_tenant_sink_breakers = true;
  }
  options.worker.enable_lint = false;
  QWorkerPool pool(options);
  pool.Deploy(TrainedClassifier());
  pool.set_database_sink([](const workload::LabeledQuery& q) {
    if (q.account == "aggressor") {
      // The noisy backend: each aggressor query holds its slot ~200us.
      util::Stopwatch spin;
      while (spin.ElapsedMillis() < 0.2) {
      }
    }
  });

  const size_t kFloodThreads = 2;
  const size_t kFloodBatch = 32;
  std::atomic<bool> stop{false};
  std::atomic<size_t> started{0};
  std::atomic<size_t> aggressor_submitted{0};
  std::atomic<size_t> aggressor_shed{0};
  std::atomic<size_t> aggressor_returned{0};
  std::vector<std::thread> flood;
  flood.reserve(kFloodThreads);
  for (size_t t = 0; t < kFloodThreads; ++t) {
    flood.emplace_back([&] {
      workload::Workload batch;
      for (size_t i = 0; i < kFloodBatch; ++i) {
        batch.Add(MakeQuery("aggressor"));
      }
      bool first = true;
      while (!stop.load(std::memory_order_relaxed)) {
        aggressor_submitted.fetch_add(batch.size(),
                                      std::memory_order_relaxed);
        for (const auto& pq : pool.ProcessBatch(batch)) {
          aggressor_returned.fetch_add(1, std::memory_order_relaxed);
          if (pq.shed) aggressor_shed.fetch_add(1, std::memory_order_relaxed);
        }
        if (first) {
          // Startup barrier: the victim measurement must not begin (and
          // certainly not finish — it is fast) before the flood is live.
          started.fetch_add(1, std::memory_order_release);
          first = false;
        }
      }
    });
  }
  while (started.load(std::memory_order_acquire) < kFloodThreads) {
    std::this_thread::yield();
  }

  RunResult result;
  std::vector<double> latencies;
  latencies.reserve(victim_queries);
  workload::LabeledQuery victim_query = MakeQuery("victim");
  for (size_t i = 0; i < victim_queries; ++i) {
    {
      // Small inter-arrival gap so the victim samples span many flood
      // batch cycles instead of racing through one quiet window.
      util::Stopwatch gap;
      while (gap.ElapsedMillis() < 0.02) {
      }
    }
    util::Stopwatch sw;
    auto pq = pool.Process(victim_query);
    double ms = sw.ElapsedMillis();
    if (pq.shed) {
      ++result.victim_shed;
    } else {
      latencies.push_back(ms);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : flood) th.join();

  result.victim_p99_ms = Percentile(latencies, 0.99);
  result.victim_samples = latencies.size();
  result.aggressor_submitted = aggressor_submitted.load();
  result.aggressor_shed = aggressor_shed.load();
  result.silent_drops = aggressor_submitted.load() - aggressor_returned.load();
  return result;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool perf_gate = true;
  const char* out_path = "BENCH_tenant.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-perf-gate") == 0) {
      perf_gate = false;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_tenant_fairness [--smoke] [--no-perf-gate] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  const size_t victim_queries = smoke ? 400 : 3000;
  std::printf("=== tenant fairness: 2-thread aggressor flood (32-query "
              "batches, ~200us backend) vs %zu victim queries ===\n",
              victim_queries);

  RunResult off = RunScenario(/*isolation=*/false, victim_queries);
  RunResult on = RunScenario(/*isolation=*/true, victim_queries);
  std::printf("  isolation OFF: victim p99 %.3f ms over %zu ok, %zu shed; "
              "aggressor shed %.1f%%\n",
              off.victim_p99_ms, off.victim_samples, off.victim_shed,
              100.0 * off.aggressor_shed_rate());
  std::printf("  isolation ON:  victim p99 %.3f ms over %zu ok, %zu shed; "
              "aggressor shed %.1f%%\n",
              on.victim_p99_ms, on.victim_samples, on.victim_shed,
              100.0 * on.aggressor_shed_rate());

  auto& registry = obs::MetricsRegistry::Global();
  auto set = [&registry](const std::string& name, const obs::Labels& labels,
                         const std::string& help, double value) {
    registry.GetGauge(name, labels, help).Set(value);
  };
  set("bench_tenant_victim_p99_ms", {{"isolation", "off"}},
      "Victim successful-only p99 under a fixed aggressor flood, ms",
      off.victim_p99_ms);
  set("bench_tenant_victim_p99_ms", {{"isolation", "on"}}, "",
      on.victim_p99_ms);
  set("bench_tenant_victim_shed", {{"isolation", "off"}},
      "Victim queries shed during the flood", off.victim_shed);
  set("bench_tenant_victim_shed", {{"isolation", "on"}}, "", on.victim_shed);
  set("bench_tenant_aggressor_shed_rate", {{"isolation", "off"}},
      "Fraction of the aggressor flood shed", off.aggressor_shed_rate());
  set("bench_tenant_aggressor_shed_rate", {{"isolation", "on"}}, "",
      on.aggressor_shed_rate());

  // Contract (every config, sanitizers included): with isolation on the
  // victim is untouched, the aggressor pays, and nothing is dropped.
  bool contract_ok = on.victim_shed == 0 && on.aggressor_shed_rate() > 0.0 &&
                     on.silent_drops == 0 && off.silent_drops == 0 &&
                     on.victim_samples > 0;
  set("bench_tenant_contract_ok", {},
      "1 when the isolation contract held (victim unshed, aggressor shed, "
      "no silent drops)",
      contract_ok ? 1.0 : 0.0);

  std::string json = obs::ExportJson(registry, "bench_");
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  if (!contract_ok) {
    std::fprintf(stderr,
                 "FAIL: isolation contract (victim_shed=%zu aggressor_"
                 "shed_rate=%.3f silent_drops=%zu+%zu victim_samples=%zu)\n",
                 on.victim_shed, on.aggressor_shed_rate(), on.silent_drops,
                 off.silent_drops, on.victim_samples);
    return 1;
  }
  if (smoke && perf_gate) {
    // Plain-config perf gate: isolation must actually help the victim —
    // the unisolated flood sheds it while the isolated run keeps its p99
    // no worse than the unisolated successful tail.
    if (off.victim_shed == 0) {
      std::fprintf(stderr,
                   "FAIL: unisolated flood never shed the victim — the "
                   "aggressor load is too weak to measure anything\n");
      return 1;
    }
    if (on.victim_p99_ms > off.victim_p99_ms * 1.5 + 0.5) {
      std::fprintf(stderr,
                   "FAIL: isolated victim p99 %.3f ms much worse than "
                   "unisolated %.3f ms\n",
                   on.victim_p99_ms, off.victim_p99_ms);
      return 1;
    }
  }
  if (smoke) std::printf("smoke OK\n");
  return 0;
}

}  // namespace
}  // namespace querc::bench

int main(int argc, char** argv) { return querc::bench::Main(argc, argv); }
