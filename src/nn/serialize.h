#ifndef QUERC_NN_SERIALIZE_H_
#define QUERC_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace querc::nn {

/// Binary tensor (de)serialization. Format per tensor:
///   u64 rows, u64 cols, u64 name_len, name bytes, rows*cols f64 values.
/// Gradients are not persisted. Streams are little-endian native; models
/// are an experiment artifact, not an interchange format.

util::Status WriteTensor(std::ostream& out, const Tensor& tensor);
util::Status ReadTensor(std::istream& in, Tensor& tensor);

/// Writes/reads a string with a u64 length prefix.
util::Status WriteString(std::ostream& out, const std::string& s);
util::Status ReadString(std::istream& in, std::string& s);

/// Writes/reads a raw u64 / f64.
util::Status WriteU64(std::ostream& out, uint64_t v);
util::Status ReadU64(std::istream& in, uint64_t& v);
util::Status WriteF64(std::ostream& out, double v);
util::Status ReadF64(std::istream& in, double& v);

}  // namespace querc::nn

#endif  // QUERC_NN_SERIALIZE_H_
