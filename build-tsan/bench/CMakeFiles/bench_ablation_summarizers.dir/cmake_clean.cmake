file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_summarizers.dir/bench_ablation_summarizers.cc.o"
  "CMakeFiles/bench_ablation_summarizers.dir/bench_ablation_summarizers.cc.o.d"
  "bench_ablation_summarizers"
  "bench_ablation_summarizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_summarizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
