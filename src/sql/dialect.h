#ifndef QUERC_SQL_DIALECT_H_
#define QUERC_SQL_DIALECT_H_

#include <string>
#include <string_view>

namespace querc::sql {

/// SQL dialects the lexer understands. Querc is database-agnostic: the
/// embedders consume raw token streams, so adding a dialect only means
/// teaching the *lexer* its quoting/keyword quirks — no per-application
/// feature extractors.
enum class Dialect {
  kGeneric,    // ANSI-ish: "ident" quoting, standard keywords
  kSqlServer,  // [ident] quoting, TOP, CROSS/OUTER APPLY, GETDATE
  kSnowflake,  // "ident" quoting, ILIKE, QUALIFY, FLATTEN, ::casts, $1 params
};

/// Returns a stable name ("generic", "sqlserver", "snowflake").
std::string_view DialectName(Dialect dialect);

/// Per-dialect lexing traits.
struct DialectTraits {
  /// True if `word` (already upper-cased) is a keyword in this dialect.
  bool (*is_keyword)(std::string_view word);
  /// Opening character for quoted identifiers besides the ANSI `"`.
  char extra_ident_open = '\0';
  /// Matching closing character for `extra_ident_open`.
  char extra_ident_close = '\0';
  /// Whether `@name` / `$n` parameter markers are recognized.
  bool at_parameters = false;
  bool dollar_parameters = false;
};

/// Traits table lookup for `dialect`.
const DialectTraits& GetDialectTraits(Dialect dialect);

/// True if `word` (upper-cased) is a keyword shared by all dialects.
bool IsCommonKeyword(std::string_view word);

}  // namespace querc::sql

#endif  // QUERC_SQL_DIALECT_H_
