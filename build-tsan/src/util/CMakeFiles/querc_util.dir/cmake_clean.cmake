file(REMOVE_RECURSE
  "CMakeFiles/querc_util.dir/logging.cc.o"
  "CMakeFiles/querc_util.dir/logging.cc.o.d"
  "CMakeFiles/querc_util.dir/status.cc.o"
  "CMakeFiles/querc_util.dir/status.cc.o.d"
  "CMakeFiles/querc_util.dir/string_util.cc.o"
  "CMakeFiles/querc_util.dir/string_util.cc.o.d"
  "CMakeFiles/querc_util.dir/table_writer.cc.o"
  "CMakeFiles/querc_util.dir/table_writer.cc.o.d"
  "CMakeFiles/querc_util.dir/thread_pool.cc.o"
  "CMakeFiles/querc_util.dir/thread_pool.cc.o.d"
  "libquerc_util.a"
  "libquerc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
