file(REMOVE_RECURSE
  "CMakeFiles/querc_nn.dir/lstm.cc.o"
  "CMakeFiles/querc_nn.dir/lstm.cc.o.d"
  "CMakeFiles/querc_nn.dir/optimizer.cc.o"
  "CMakeFiles/querc_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/querc_nn.dir/serialize.cc.o"
  "CMakeFiles/querc_nn.dir/serialize.cc.o.d"
  "CMakeFiles/querc_nn.dir/softmax.cc.o"
  "CMakeFiles/querc_nn.dir/softmax.cc.o.d"
  "libquerc_nn.a"
  "libquerc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/querc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
