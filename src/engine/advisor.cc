#include "engine/advisor.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace querc::engine {

namespace {

/// One advisor run = one increment of runs_total plus `whatif_calls_used`
/// increments of the call counter; the gauge keeps the last run's budget
/// consumption (0..1) for dashboards.
void RecordAdvisorRun(int64_t whatif_calls_used, int64_t budget) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter& runs = registry.GetCounter(
      "querc_advisor_runs_total", {}, "TuningAdvisor::Recommend invocations");
  static obs::Counter& calls = registry.GetCounter(
      "querc_advisor_whatif_calls_total", {},
      "What-if optimizer calls consumed across all advisor runs");
  static obs::Gauge& consumed = registry.GetGauge(
      "querc_advisor_budget_consumed_ratio", {},
      "Fraction of the what-if call budget used by the last advisor run");
  runs.Increment();
  calls.Increment(static_cast<uint64_t>(std::max<int64_t>(
      0, whatif_calls_used)));
  consumed.Set(budget <= 0 ? 0.0
                           : static_cast<double>(whatif_calls_used) /
                                 static_cast<double>(budget));
}

/// A deduplicated query: parsed shape plus its multiplicity in the input.
struct DistinctQuery {
  sql::QueryShape shape;
  double weight = 1.0;
};

/// Collects per-table filter columns from a shape tree.
void CollectCandidates(const sql::QueryShape& shape, const Catalog& catalog,
                       std::set<std::pair<std::string, std::string>>& out) {
  for (const sql::Predicate& p : shape.filters) {
    if (p.column.empty()) continue;
    std::string table;
    if (!p.qualifier.empty()) table = shape.ResolveQualifier(p.qualifier);
    if (table.empty()) table = catalog.TableOfColumn(p.column);
    if (table.empty()) continue;
    const TableStats* stats = catalog.Table(table);
    if (stats == nullptr || stats->Column(p.column) == nullptr) continue;
    // Tiny tables never benefit from an index in the cost model.
    if (stats->row_count < 1000) continue;
    out.emplace(table, p.column);
  }
  for (const sql::QueryShape& sub : shape.subqueries) {
    CollectCandidates(sub, catalog, out);
  }
}

}  // namespace

AdvisorResult TuningAdvisor::Recommend(
    const std::vector<std::string>& workload_texts,
    sql::Dialect dialect) const {
  AdvisorResult result;

  const double raw_budget =
      (options_.budget_minutes - options_.startup_minutes) *
      options_.whatif_calls_per_minute;
  if (raw_budget <= 0.0) {
    result.log.push_back("budget below startup overhead: no recommendation");
    RecordAdvisorRun(0, 0);
    return result;
  }
  int64_t budget = static_cast<int64_t>(raw_budget);

  // 1. Built-in compression: dedup exact texts.
  std::map<std::string, double> multiplicity;
  for (const std::string& text : workload_texts) ++multiplicity[text];
  std::vector<DistinctQuery> queries;
  queries.reserve(multiplicity.size());
  for (const auto& [text, weight] : multiplicity) {
    DistinctQuery q;
    q.shape = sql::AnalyzeText(text, dialect);
    q.weight = weight;
    queries.push_back(std::move(q));
  }
  result.log.push_back(util::StrFormat(
      "input: %zu queries, %zu distinct after compression",
      workload_texts.size(), queries.size()));

  // 2. Candidate enumeration (syntactic, free).
  std::set<std::pair<std::string, std::string>> candidate_set;
  for (const DistinctQuery& q : queries) {
    CollectCandidates(q.shape, model_->catalog(), candidate_set);
  }
  std::vector<Index> candidates;
  for (const auto& [table, column] : candidate_set) {
    candidates.push_back(Index{table, {column}});
  }
  result.log.push_back(
      util::StrFormat("candidates: %zu", candidates.size()));

  // 3. Cheap pre-scoring: estimated benefit of each candidate alone
  // (heuristic, does not consume budget — models DTA's per-query candidate
  // selection).
  std::vector<std::pair<double, size_t>> scored;
  for (size_t c = 0; c < candidates.size(); ++c) {
    IndexConfig solo = {candidates[c]};
    double benefit = 0.0;
    for (const DistinctQuery& q : queries) {
      double base = model_->Cost(q.shape, {}).estimated_seconds;
      double with = model_->Cost(q.shape, solo).estimated_seconds;
      benefit += q.weight * (base - with);
    }
    scored.emplace_back(-benefit, c);  // ascending sort => descending benefit
  }
  std::sort(scored.begin(), scored.end());

  // 4. Budgeted greedy selection by marginal ESTIMATED benefit.
  auto est_total = [&](const IndexConfig& config, int64_t& calls) {
    double total = 0.0;
    for (const DistinctQuery& q : queries) {
      total += q.weight * model_->Cost(q.shape, config).estimated_seconds;
      ++calls;
    }
    return total;
  };

  std::vector<bool> selected(candidates.size(), false);
  for (int round = 0; round < options_.max_rounds &&
                      static_cast<int>(result.config.size()) <
                          options_.max_indexes;
       ++round) {
    if (result.whatif_calls_used +
            static_cast<int64_t>(queries.size()) > budget) {
      result.log.push_back(util::StrFormat(
          "round %d: budget exhausted before base costing", round + 1));
      break;
    }
    double base_cost = est_total(result.config, result.whatif_calls_used);

    double best_benefit = options_.min_benefit_seconds;
    int best_candidate = -1;
    bool ran_out = false;
    double used_storage = ConfigSizeMb(model_->catalog(), result.config);
    for (const auto& [neg_score, c] : scored) {
      (void)neg_score;
      if (selected[c]) continue;
      if (options_.max_storage_mb > 0.0 &&
          used_storage + IndexSizeMb(model_->catalog(), candidates[c]) >
              options_.max_storage_mb) {
        continue;  // would not fit the storage budget
      }
      if (result.whatif_calls_used +
              static_cast<int64_t>(queries.size()) > budget) {
        ran_out = true;
        break;  // partial round: pick among candidates evaluated so far
      }
      IndexConfig trial = result.config;
      trial.push_back(candidates[c]);
      double trial_cost = est_total(trial, result.whatif_calls_used);
      double benefit = base_cost - trial_cost;
      if (benefit > best_benefit) {
        best_benefit = benefit;
        best_candidate = static_cast<int>(c);
      }
    }
    if (best_candidate < 0) {
      if (!ran_out) {
        result.log.push_back(util::StrFormat(
            "round %d: no candidate with positive benefit; stopping",
            round + 1));
        result.rounds_completed = round + 1;
        break;
      }
      result.log.push_back(util::StrFormat(
          "round %d: budget exhausted, nothing selected", round + 1));
      break;
    }
    selected[static_cast<size_t>(best_candidate)] = true;
    result.config.push_back(candidates[static_cast<size_t>(best_candidate)]);
    result.rounds_completed = round + 1;
    result.log.push_back(util::StrFormat(
        "round %d: selected %s (est benefit %.2fs)%s", round + 1,
        candidates[static_cast<size_t>(best_candidate)].ToString().c_str(),
        best_benefit, ran_out ? " [partial round]" : ""));
    if (ran_out) break;
  }

  // 5. Refinement: high-fidelity (actual-cost) pruning of harmful indexes.
  // Needs (1 + selected) workload passes.
  const int64_t refine_cost =
      static_cast<int64_t>(queries.size()) *
      static_cast<int64_t>(1 + result.config.size());
  if (!result.config.empty() &&
      result.whatif_calls_used + refine_cost <= budget) {
    auto act_total = [&](const IndexConfig& config) {
      double total = 0.0;
      for (const DistinctQuery& q : queries) {
        total += q.weight * model_->Cost(q.shape, config).actual_seconds;
        ++result.whatif_calls_used;
      }
      return total;
    };
    double current = act_total(result.config);
    for (size_t i = 0; i < result.config.size();) {
      IndexConfig without = result.config;
      without.erase(without.begin() + static_cast<long>(i));
      double alt = act_total(without);
      if (alt < current) {
        result.log.push_back(util::StrFormat(
            "refinement: dropped %s (actual cost %.2fs -> %.2fs)",
            result.config[i].ToString().c_str(), current, alt));
        result.config = std::move(without);
        current = alt;
      } else {
        ++i;
      }
    }
    result.completed_refinement = true;
  } else if (!result.config.empty()) {
    result.log.push_back("refinement skipped: budget exhausted");
  }

  // 6. Optional DTA-style merge phase: fuse same-table single-column
  // indexes into composites when the fusion lowers the ESTIMATED workload
  // cost. Each trial costs one workload pass.
  if (options_.enable_index_merging && result.config.size() >= 2) {
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      double base = 0.0;
      {
        if (result.whatif_calls_used +
                static_cast<int64_t>(queries.size()) > budget) {
          result.log.push_back("merging stopped: budget exhausted");
          break;
        }
        base = est_total(result.config, result.whatif_calls_used);
      }
      for (size_t i = 0; i < result.config.size() && !merged_any; ++i) {
        for (size_t j = 0; j < result.config.size() && !merged_any; ++j) {
          if (i == j) continue;
          const Index& a = result.config[i];
          const Index& b = result.config[j];
          if (a.table != b.table || a.key_columns.size() != 1 ||
              b.key_columns.size() != 1) {
            continue;
          }
          if (result.whatif_calls_used +
                  static_cast<int64_t>(queries.size()) > budget) {
            result.log.push_back("merging stopped: budget exhausted");
            merged_any = false;
            i = result.config.size();
            break;
          }
          Index fused{a.table, {a.key_columns[0], b.key_columns[0]}};
          IndexConfig trial;
          for (size_t k = 0; k < result.config.size(); ++k) {
            if (k != i && k != j) trial.push_back(result.config[k]);
          }
          trial.push_back(fused);
          double trial_cost = est_total(trial, result.whatif_calls_used);
          if (trial_cost < base) {
            result.log.push_back(util::StrFormat(
                "merge: %s + %s -> %s (est %.2fs -> %.2fs)",
                a.ToString().c_str(), b.ToString().c_str(),
                fused.ToString().c_str(), base, trial_cost));
            result.config = std::move(trial);
            merged_any = true;
          }
        }
      }
    }
  }

  result.storage_mb = ConfigSizeMb(model_->catalog(), result.config);
  RecordAdvisorRun(result.whatif_calls_used, budget);
  return result;
}

}  // namespace querc::engine
