# Empty dependencies file for querc_engine.
# This may be replaced when dependencies are built.
