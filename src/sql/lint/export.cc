#include "sql/lint/export.h"

#include <set>

#include "util/string_util.h"

namespace querc::sql::lint {
namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// SARIF "level" for a severity (SARIF has no "info"; it uses "note").
const char* SarifLevel(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "warning";
}

void AppendDiagnosticJson(const Diagnostic& d, std::string* out) {
  *out += util::StrFormat(
      "{\"rule_id\":\"%s\",\"severity\":\"%s\",\"query_index\":%zu,"
      "\"offset\":%zu,\"length\":%zu,\"message\":\"%s\",\"fix_hint\":\"%s\"}",
      JsonEscape(d.rule_id).c_str(),
      std::string(SeverityName(d.severity)).c_str(), d.query_index,
      d.span.offset, d.span.length, JsonEscape(d.message).c_str(),
      JsonEscape(d.fix_hint).c_str());
}

}  // namespace

std::string FormatText(const LintReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += util::StrFormat("query %zu: %s: [%s] %s\n", d.query_index,
                           std::string(SeverityName(d.severity)).c_str(),
                           d.rule_id.c_str(), d.message.c_str());
    if (!d.fix_hint.empty()) {
      out += util::StrFormat("  fix: %s\n", d.fix_hint.c_str());
    }
  }
  out += util::StrFormat(
      "\n%zu queries linted, %zu diagnostics (%zu error, %zu warning, "
      "%zu info)\n",
      report.total_queries, report.diagnostics.size(),
      report.CountAtLeast(Severity::kError),
      report.CountAtLeast(Severity::kWarning) -
          report.CountAtLeast(Severity::kError),
      report.diagnostics.size() - report.CountAtLeast(Severity::kWarning));
  if (!report.rule_hits.empty()) {
    out += "rule hits:\n";
    for (const auto& [rule, hits] : report.rule_hits) {
      out += util::StrFormat("  %-28s %zu\n", rule.c_str(), hits);
    }
  }
  if (!report.top_templates.empty()) {
    out += "top offending templates:\n";
    for (const TemplateLint& t : report.top_templates) {
      std::string fp = t.fingerprint.size() > 72
                           ? t.fingerprint.substr(0, 69) + "..."
                           : t.fingerprint;
      out += util::StrFormat(
          "  %zu diagnostics over %zu instances (query %zu): %s\n",
          t.diagnostics, t.instances, t.example_query, fp.c_str());
    }
  }
  return out;
}

std::string FormatJson(const LintReport& report) {
  std::string out = "{";
  out += util::StrFormat("\"total_queries\":%zu,", report.total_queries);
  out += "\"diagnostics\":[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    if (i > 0) out += ",";
    AppendDiagnosticJson(report.diagnostics[i], &out);
  }
  out += "],\"rule_hits\":{";
  bool first = true;
  for (const auto& [rule, hits] : report.rule_hits) {
    if (!first) out += ",";
    first = false;
    out += util::StrFormat("\"%s\":%zu", JsonEscape(rule).c_str(), hits);
  }
  out += "},\"top_templates\":[";
  for (size_t i = 0; i < report.top_templates.size(); ++i) {
    if (i > 0) out += ",";
    const TemplateLint& t = report.top_templates[i];
    out += util::StrFormat(
        "{\"fingerprint\":\"%s\",\"instances\":%zu,\"diagnostics\":%zu,"
        "\"example_query\":%zu}",
        JsonEscape(t.fingerprint).c_str(), t.instances, t.diagnostics,
        t.example_query);
  }
  out += "]}";
  return out;
}

std::string FormatSarif(const LintReport& report,
                        const RuleRegistry& registry) {
  std::string out =
      "{\"version\":\"2.1.0\","
      "\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
      "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
      "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"querc-lint\","
      "\"informationUri\":\"https://example.invalid/querc\","
      "\"rules\":[";
  // Emit metadata for every registered rule plus any rule id that appears
  // only in the report (a custom registry may differ from the reporter's).
  std::set<std::string> emitted;
  bool first = true;
  auto emit_rule = [&](std::string_view id, std::string_view summary,
                       Severity severity) {
    if (!emitted.insert(std::string(id)).second) return;
    if (!first) out += ",";
    first = false;
    out += util::StrFormat(
        "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},"
        "\"defaultConfiguration\":{\"level\":\"%s\"}}",
        JsonEscape(id).c_str(), JsonEscape(summary).c_str(),
        SarifLevel(severity));
  };
  for (const auto& rule : registry.rules()) {
    emit_rule(rule->id(), rule->summary(), rule->severity());
  }
  for (const auto& [rule, hits] : report.rule_hits) {
    emit_rule(rule, "", Severity::kWarning);
  }
  out += "]}},\"results\":[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    if (i > 0) out += ",";
    const Diagnostic& d = report.diagnostics[i];
    out += util::StrFormat(
        "{\"ruleId\":\"%s\",\"level\":\"%s\","
        "\"message\":{\"text\":\"%s\"},"
        "\"locations\":[{\"physicalLocation\":{"
        "\"artifactLocation\":{\"uri\":\"query/%zu\"},"
        "\"region\":{\"charOffset\":%zu,\"charLength\":%zu}}}],"
        "\"properties\":{\"queryIndex\":%zu,\"fixHint\":\"%s\"}}",
        JsonEscape(d.rule_id).c_str(), SarifLevel(d.severity),
        JsonEscape(d.message).c_str(), d.query_index, d.span.offset,
        d.span.length, d.query_index, JsonEscape(d.fix_hint).c_str());
  }
  out += "]}]}";
  return out;
}

}  // namespace querc::sql::lint
