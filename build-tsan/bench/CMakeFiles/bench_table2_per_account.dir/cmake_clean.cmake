file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_per_account.dir/bench_table2_per_account.cc.o"
  "CMakeFiles/bench_table2_per_account.dir/bench_table2_per_account.cc.o.d"
  "bench_table2_per_account"
  "bench_table2_per_account.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_per_account.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
