file(REMOVE_RECURSE
  "CMakeFiles/test_nn_lstm.dir/test_nn_lstm.cc.o"
  "CMakeFiles/test_nn_lstm.dir/test_nn_lstm.cc.o.d"
  "test_nn_lstm"
  "test_nn_lstm.pdb"
  "test_nn_lstm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_lstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
