#include "nn/softmax.h"

#include <algorithm>
#include <cmath>

namespace querc::nn {

void SoftmaxInPlace(Vec& logits) {
  double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (double& v : logits) v /= sum;
}

SoftmaxHead::SoftmaxHead(size_t vocab_size, size_t hidden_dim,
                         const std::string& name, util::Rng& rng)
    : w_(vocab_size, hidden_dim, name + ".w"),
      b_(vocab_size, 1, name + ".b") {
  w_.XavierInit(rng);
}

double SoftmaxHead::ForwardLoss(const Vec& h, size_t target,
                                Vec& probs) const {
  probs.resize(w_.rows());
  for (size_t r = 0; r < w_.rows(); ++r) {
    probs[r] = Dot(w_.row(r), h.data(), w_.cols()) + b_.at(r, 0);
  }
  SoftmaxInPlace(probs);
  double p = std::max(probs[target], 1e-12);
  return -std::log(p);
}

void SoftmaxHead::Backward(const Vec& h, size_t target, const Vec& probs,
                           Vec& dh) {
  dh.assign(w_.cols(), 0.0);
  for (size_t r = 0; r < w_.rows(); ++r) {
    double dlogit = probs[r] - (r == target ? 1.0 : 0.0);
    if (dlogit == 0.0) continue;
    Axpy(dlogit, h.data(), w_.grad_row(r), w_.cols());
    b_.grad_at(r, 0) += dlogit;
    Axpy(dlogit, w_.row(r), dh.data(), w_.cols());
  }
}

size_t SoftmaxHead::Predict(const Vec& h) const {
  size_t best = 0;
  double best_logit = -1e300;
  for (size_t r = 0; r < w_.rows(); ++r) {
    double logit = Dot(w_.row(r), h.data(), w_.cols()) + b_.at(r, 0);
    if (logit > best_logit) {
      best_logit = logit;
      best = r;
    }
  }
  return best;
}

double NegativeSamplingStep(const double* context, size_t dim,
                            size_t target_word,
                            const std::vector<size_t>& negative_words,
                            Tensor& output_table, double lr, Vec& d_context,
                            bool update_output) {
  d_context.assign(dim, 0.0);
  double loss = 0.0;

  auto update_pair = [&](size_t word, double label) {
    double* out_row = output_table.row(word);
    double score = Sigmoid(Dot(context, out_row, dim));
    loss -= std::log(std::max(label > 0.5 ? score : 1.0 - score, 1e-12));
    double g = score - label;  // d(loss)/d(logit)
    Axpy(g, out_row, d_context.data(), dim);
    if (update_output) Axpy(-lr * g, context, out_row, dim);
  };

  update_pair(target_word, 1.0);
  for (size_t neg : negative_words) {
    if (neg == target_word) continue;
    update_pair(neg, 0.0);
  }
  return loss;
}

}  // namespace querc::nn
