#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "sql/lint/rule.h"
#include "util/string_util.h"

namespace querc::sql::lint {

void Rule::Check(const QueryContext&, std::vector<Diagnostic>*) const {}
void Rule::CheckWorkload(const WorkloadContext&,
                         std::vector<Diagnostic>*) const {}

void RuleRegistry::Register(std::unique_ptr<const Rule> rule) {
  for (auto& existing : rules_) {
    if (existing->id() == rule->id()) {
      existing = std::move(rule);
      return;
    }
  }
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::Find(std::string_view id) const {
  for (const auto& rule : rules_) {
    if (rule->id() == id) return rule.get();
  }
  return nullptr;
}

namespace {

bool IsIdent(const Token& t) {
  return t.type == TokenType::kIdentifier ||
         t.type == TokenType::kQuotedIdentifier;
}

bool IsLiteral(const Token& t) {
  return t.type == TokenType::kNumber || t.type == TokenType::kString;
}

bool IsComparisonOp(const Token& t) {
  return t.type == TokenType::kOperator &&
         (t.text == "=" || t.text == "<" || t.text == ">" || t.text == "<=" ||
          t.text == ">=" || t.text == "<>" || t.text == "!=");
}

bool IsArithmeticOp(const Token& t) {
  return t.type == TokenType::kOperator &&
         (t.text == "+" || t.text == "-" || t.text == "*" || t.text == "/" ||
          t.text == "%");
}

bool IsAggregateKeyword(const Token& t) {
  return t.type == TokenType::kKeyword &&
         (t.text == "SUM" || t.text == "AVG" || t.text == "MIN" ||
          t.text == "MAX" || t.text == "COUNT");
}

/// Keywords that behave as scalar functions over a column (the lexer
/// classifies them as keywords, so the identifier-head check misses them).
bool IsScalarFunctionKeyword(const Token& t) {
  return t.type == TokenType::kKeyword &&
         (t.text == "SUBSTRING" || t.text == "CAST" || t.text == "EXTRACT" ||
          t.text == "COALESCE" || t.text == "YEAR" || t.text == "MONTH" ||
          t.text == "DAY" || t.text == "HOUR" || t.text == "MINUTE" ||
          t.text == "SECOND" || t.text == "DATEADD" || t.text == "GETDATE");
}

/// Marks every token inside a predicate-bearing clause (WHERE / ON /
/// HAVING) at any nesting level. Parenthesized regions inherit the state
/// at their '(' except when they open a subquery, which starts fresh at
/// its own SELECT.
std::vector<char> PredicateMask(const TokenList& tokens) {
  std::vector<char> mask(tokens.size(), 0);
  std::vector<char> stack;
  char in_pred = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.type == TokenType::kKeyword) {
      const std::string& kw = t.text;
      if (kw == "WHERE" || kw == "ON" || kw == "HAVING") {
        in_pred = 1;
      } else if (kw == "SELECT" || kw == "FROM" || kw == "GROUP" ||
                 kw == "ORDER" || kw == "LIMIT" || kw == "OFFSET" ||
                 kw == "FETCH" || kw == "UNION" || kw == "INTERSECT" ||
                 kw == "EXCEPT" || kw == "JOIN" || kw == "INNER" ||
                 kw == "LEFT" || kw == "RIGHT" || kw == "FULL" ||
                 kw == "CROSS" || kw == "OUTER") {
        in_pred = 0;
      }
    } else if (t.IsPunct('(')) {
      stack.push_back(in_pred);
    } else if (t.IsPunct(')')) {
      if (!stack.empty()) {
        in_pred = stack.back();
        stack.pop_back();
      }
    } else if (t.IsPunct(';')) {
      in_pred = 0;
    }
    mask[i] = in_pred;
  }
  return mask;
}

/// Index of the '(' matching the ')' at `close`, or npos.
size_t MatchingOpen(const TokenList& tokens, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (tokens[i].IsPunct(')')) ++depth;
    if (tokens[i].IsPunct('(')) {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Parses `[qual .] column` at `i`; returns next index, or `i` if no
/// reference starts there.
struct ColRef {
  std::string qualifier;
  std::string column;
  size_t begin = 0;
  size_t end = 0;  // one past the last token
};

bool ParseColRef(const TokenList& tokens, size_t i, ColRef* out) {
  if (i >= tokens.size() || !IsIdent(tokens[i])) return false;
  out->begin = i;
  if (i + 2 < tokens.size() && tokens[i + 1].IsOperator(".") &&
      IsIdent(tokens[i + 2])) {
    out->qualifier = util::ToLower(tokens[i].text);
    out->column = util::ToLower(tokens[i + 2].text);
    out->end = i + 3;
  } else {
    out->qualifier.clear();
    out->column = util::ToLower(tokens[i].text);
    out->end = i + 1;
  }
  return true;
}

Span TokenSpan(const TokenList& tokens, size_t begin, size_t end_inclusive) {
  Span span;
  span.offset = tokens[begin].offset;
  const Token& last = tokens[end_inclusive];
  span.length = last.offset + last.text.size() - span.offset;
  return span;
}

Diagnostic MakeDiagnostic(const Rule& rule, const QueryContext& ctx,
                          Span span, std::string message,
                          std::string fix_hint,
                          Severity severity) {
  Diagnostic d;
  d.rule_id = std::string(rule.id());
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  d.query_index = ctx.query_index;
  return d;
}

Diagnostic MakeDiagnostic(const Rule& rule, const QueryContext& ctx,
                          Span span, std::string message,
                          std::string fix_hint = "") {
  return MakeDiagnostic(rule, ctx, span, std::move(message),
                        std::move(fix_hint), rule.severity());
}

/// Is `table` one of the base tables referenced at this shape level?
bool ShapeHasTable(const QueryShape& shape, const std::string& table) {
  return std::find(shape.tables.begin(), shape.tables.end(), table) !=
         shape.tables.end();
}

/// The analyzer records a `col = col` equality as a join only when a side
/// carries a qualifier; a bare-bare equality (`c_custkey = o_custkey`, the
/// TPC-H comma-join idiom) is dropped from QueryShape entirely. When the
/// token stream shows such an equality anywhere in a predicate clause, the
/// shape's join graph is incomplete and join-structure rules must stay
/// silent rather than cry cartesian product.
bool HasUnrecordedJoinEquality(const TokenList& tokens) {
  std::vector<char> mask = PredicateMask(tokens);
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!mask[i]) continue;
    // Skip identifiers that are the column part of a qualified reference.
    if (i > 0 && tokens[i - 1].IsOperator(".")) continue;
    ColRef left;
    if (!ParseColRef(tokens, i, &left) || !left.qualifier.empty()) continue;
    if (left.end >= tokens.size() || !tokens[left.end].IsOperator("=")) {
      continue;
    }
    ColRef right;
    if (!ParseColRef(tokens, left.end + 1, &right) ||
        !right.qualifier.empty()) {
      continue;
    }
    if (left.column != right.column) return true;
  }
  return false;
}

/// True when any token is the OR keyword (used to disable AND-conjunction
/// reasoning: without tracking disjunction structure, flagging would be
/// unsound).
bool ContainsOr(const TokenList& tokens) {
  for (const Token& t : tokens) {
    if (t.IsKeyword("OR")) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// 1. cartesian-product: a FROM list with >= 2 tables and not a single join
//    predicate anywhere at that level, or an explicit CROSS JOIN.
// ---------------------------------------------------------------------------
class CartesianProductRule : public Rule {
 public:
  std::string_view id() const override { return "cartesian-product"; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "FROM references multiple tables with no join predicate "
           "(cross product)";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    // A bare-bare equi-join in the text means the shape's join list is
    // incomplete (see HasUnrecordedJoinEquality): "no join predicate"
    // cannot be concluded from the shape, so only the explicit CROSS JOIN
    // check runs.
    if (!HasUnrecordedJoinEquality(*ctx.tokens)) {
      CheckShape(*ctx.shape, ctx, out);
    }
    const TokenList& tokens = *ctx.tokens;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].IsKeyword("CROSS") && tokens[i + 1].IsKeyword("JOIN")) {
        out->push_back(MakeDiagnostic(
            *this, ctx, TokenSpan(tokens, i, i + 1),
            "explicit CROSS JOIN produces a cartesian product",
            "replace with an inner join carrying a join predicate, or "
            "confirm the cross product is intended"));
      }
    }
  }

 private:
  void CheckShape(const QueryShape& shape, const QueryContext& ctx,
                  std::vector<Diagnostic>* out) const {
    // UNION/INTERSECT/EXCEPT collapse several FROM lists into one shape
    // level; joins cannot be attributed soundly, so stay silent.
    if (shape.set_operation_count == 0 && shape.tables.size() >= 2 &&
        shape.joins.empty()) {
      out->push_back(MakeDiagnostic(
          *this, ctx, Span{},
          util::StrFormat("%zu tables in FROM but no join predicate: the "
                          "result is a cartesian product",
                          shape.tables.size()),
          "add join predicates (t1.key = t2.key) linking every table"));
    }
    for (const QueryShape& sub : shape.subqueries) CheckShape(sub, ctx, out);
  }
};

// ---------------------------------------------------------------------------
// 2. missing-join-predicate: >= 2 tables, some joins present, but the join
//    graph leaves a table disconnected. Runs only when every join side
//    resolves to a table (via alias or schema), so it cannot guess.
// ---------------------------------------------------------------------------
class MissingJoinPredicateRule : public Rule {
 public:
  std::string_view id() const override { return "missing-join-predicate"; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "join graph leaves a table unconnected (partial cartesian "
           "product)";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    // An equi-join the analyzer dropped (bare = bare) makes connectivity
    // analysis unsound: a "disconnected" table may be joined by exactly
    // the edge that is missing from the shape.
    if (HasUnrecordedJoinEquality(*ctx.tokens)) return;
    CheckShape(*ctx.shape, ctx, out);
  }

 private:
  /// Resolves one side of a join to a base table at this level. Returns
  /// false when the side cannot be resolved (rule must give up on this
  /// shape level — skipping an edge could make connected tables look
  /// disconnected); `*table` is cleared when the side resolves to a table
  /// outside this level's FROM list (a correlated outer reference: the
  /// edge, not the level, is skipped).
  bool ResolveSide(const QueryShape& shape, const QueryContext& ctx,
                   const std::string& qualifier, const std::string& column,
                   std::string* table) const {
    if (!qualifier.empty()) {
      *table = shape.ResolveQualifier(qualifier);
      return !table->empty();
    }
    if (ctx.schema == nullptr) return false;
    std::string owner = ctx.schema->TableOfColumn(column);
    if (owner.empty()) return false;
    *table = ShapeHasTable(shape, owner) ? owner : std::string();
    return true;
  }

  void CheckShape(const QueryShape& shape, const QueryContext& ctx,
                  std::vector<Diagnostic>* out) const {
    if (shape.set_operation_count == 0 && shape.tables.size() >= 2 &&
        !shape.joins.empty()) {
      std::vector<std::string> tables(shape.tables);
      std::sort(tables.begin(), tables.end());
      tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
      // Union-find over the (unique) table names of this level.
      std::map<std::string, size_t> node;
      for (size_t i = 0; i < tables.size(); ++i) node[tables[i]] = i;
      std::vector<size_t> parent(tables.size());
      for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
      auto find = [&](size_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      bool sound = tables.size() >= 2;
      for (const JoinCondition& j : shape.joins) {
        std::string left;
        std::string right;
        if (!ResolveSide(shape, ctx, j.left_qualifier, j.left_column,
                         &left) ||
            !ResolveSide(shape, ctx, j.right_qualifier, j.right_column,
                         &right)) {
          sound = false;
          break;
        }
        if (left.empty() || right.empty()) continue;  // outer reference
        parent[find(node[left])] = find(node[right]);
      }
      if (sound) {
        // Count component sizes; a table alone in its component has no
        // join predicate reaching it.
        std::vector<size_t> size(tables.size(), 0);
        for (size_t i = 0; i < tables.size(); ++i) ++size[find(i)];
        for (size_t i = 0; i < tables.size(); ++i) {
          if (size[find(i)] == 1) {
            out->push_back(MakeDiagnostic(
                *this, ctx, Span{},
                util::StrFormat("table '%s' is not connected to the rest "
                                "of the join graph",
                                tables[i].c_str()),
                util::StrFormat("add a join predicate linking '%s' to "
                                "another table in the FROM list",
                                tables[i].c_str())));
          }
        }
      }
    }
    for (const QueryShape& sub : shape.subqueries) CheckShape(sub, ctx, out);
  }
};

// ---------------------------------------------------------------------------
// 3. non-sargable-predicate: a function call, cast, or arithmetic applied
//    to the column side of a comparison/IN/LIKE/BETWEEN, which defeats
//    index range scans.
// ---------------------------------------------------------------------------
class NonSargableRule : public Rule {
 public:
  std::string_view id() const override { return "non-sargable-predicate"; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "function/cast/arithmetic on the column side of a predicate "
           "defeats index use";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const TokenList& tokens = *ctx.tokens;
    std::vector<char> mask = PredicateMask(tokens);
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (!mask[i]) continue;
      const Token& t = tokens[i];
      bool is_pred_op = IsComparisonOp(t) || t.IsKeyword("IN") ||
                        t.IsKeyword("LIKE") || t.IsKeyword("ILIKE") ||
                        t.IsKeyword("BETWEEN");
      if (!is_pred_op || i == 0) continue;

      // Case A: `f(... col ...) op` — LHS is a parenthesized call.
      if (tokens[i - 1].IsPunct(')')) {
        size_t open = MatchingOpen(tokens, i - 1);
        if (open == std::string::npos || open == 0) continue;
        const Token& head = tokens[open - 1];
        bool function_head =
            (IsIdent(head) || IsScalarFunctionKeyword(head)) &&
            !IsAggregateKeyword(head);
        if (!function_head) continue;
        bool wraps_column = false;
        for (size_t k = open + 1; k < i - 1; ++k) {
          if (IsIdent(tokens[k])) {
            wraps_column = true;
            break;
          }
        }
        if (wraps_column) {
          out->push_back(MakeDiagnostic(
              *this, ctx, TokenSpan(tokens, open - 1, i - 1),
              util::StrFormat("'%s(...)' wraps a column on the predicate's "
                              "column side; the predicate is not sargable",
                              head.text.c_str()),
              "move the computation to the literal side so the bare column "
              "can drive an index range scan"));
        }
        continue;
      }

      // Case B: `col :: type op` — cast on the column.
      if (i >= 3 && tokens[i - 2].IsOperator("::") && IsIdent(tokens[i - 3])) {
        out->push_back(MakeDiagnostic(
            *this, ctx, TokenSpan(tokens, i - 3, i - 1),
            "cast applied to the column side of a predicate is not "
            "sargable",
            "cast the literal instead of the column"));
        continue;
      }

      // Case C: `col + lit op` / `lit + col op` — arithmetic on the column.
      if (i >= 3 && IsArithmeticOp(tokens[i - 2])) {
        const Token& a = tokens[i - 3];
        const Token& b = tokens[i - 1];
        bool column_involved = IsIdent(a) || IsIdent(b);
        bool simple_operands = (IsIdent(a) || a.type == TokenType::kNumber) &&
                               (IsIdent(b) || b.type == TokenType::kNumber);
        if (column_involved && simple_operands) {
          out->push_back(MakeDiagnostic(
              *this, ctx, TokenSpan(tokens, i - 3, i - 1),
              "arithmetic on the column side of a predicate is not "
              "sargable",
              "solve for the bare column (e.g. col > lit - 1 instead of "
              "col + 1 > lit)"));
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// 4. select-star: a top-level `SELECT *` scan (subquery stars such as
//    EXISTS (SELECT * ...) are idiomatic and ignored).
// ---------------------------------------------------------------------------
class SelectStarRule : public Rule {
 public:
  std::string_view id() const override { return "select-star"; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "top-level SELECT * fetches every column of the scanned tables";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const TokenList& tokens = *ctx.tokens;
    int depth = 0;
    bool in_top_select = false;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.IsPunct('(')) ++depth;
      if (t.IsPunct(')')) --depth;
      if (depth != 0) continue;
      if (t.IsKeyword("SELECT")) in_top_select = true;
      if (t.IsKeyword("FROM")) in_top_select = false;
      if (!in_top_select || !t.IsOperator("*") || i == 0) continue;
      const Token& prev = tokens[i - 1];
      // `SELECT *`, `SELECT a, *`, `SELECT t.*` — but not `a * b`.
      if (prev.IsKeyword("SELECT") || prev.IsPunct(',') ||
          prev.IsOperator(".")) {
        std::string detail;
        if (ctx.schema != nullptr) {
          size_t widest = 0;
          std::string widest_table;
          for (const std::string& table : ctx.shape->tables) {
            size_t cols = ctx.schema->TableColumnCount(table);
            if (cols > widest) {
              widest = cols;
              widest_table = table;
            }
          }
          if (widest >= 8) {
            detail = util::StrFormat(" ('%s' has %zu columns)",
                                     widest_table.c_str(), widest);
          }
        }
        out->push_back(MakeDiagnostic(
            *this, ctx, Span{t.offset, 1},
            "SELECT * fetches every column of the scanned tables" + detail,
            "name only the columns the application consumes"));
        return;  // one diagnostic per query is enough
      }
    }
  }
};

// ---------------------------------------------------------------------------
// 5. or-equality-chain: `col = a OR col = b [OR col = c ...]`, rewritable
//    to `col IN (a, b, c)`, which plans as one index probe set.
// ---------------------------------------------------------------------------
class OrEqualityChainRule : public Rule {
 public:
  std::string_view id() const override { return "or-equality-chain"; }
  Severity severity() const override { return Severity::kInfo; }
  std::string_view summary() const override {
    return "OR of equalities on one column is rewritable to IN";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const TokenList& tokens = *ctx.tokens;
    std::vector<char> mask = PredicateMask(tokens);
    size_t i = 0;
    while (i < tokens.size()) {
      ColRef first;
      size_t literal_end = 0;
      if (!mask[i] || !MatchEquality(tokens, i, &first, &literal_end)) {
        ++i;
        continue;
      }
      size_t chain = 1;
      size_t pos = literal_end;
      size_t last_literal = literal_end - 1;
      while (pos < tokens.size() && tokens[pos].IsKeyword("OR")) {
        ColRef next;
        size_t next_end = 0;
        if (!MatchEquality(tokens, pos + 1, &next, &next_end) ||
            next.qualifier != first.qualifier ||
            next.column != first.column) {
          break;
        }
        ++chain;
        last_literal = next_end - 1;
        pos = next_end;
      }
      if (chain >= 2) {
        std::string column = first.qualifier.empty()
                                 ? first.column
                                 : first.qualifier + "." + first.column;
        out->push_back(MakeDiagnostic(
            *this, ctx, TokenSpan(tokens, first.begin, last_literal),
            util::StrFormat("%zu OR-ed equality predicates on '%s'",
                            chain, column.c_str()),
            util::StrFormat("rewrite as %s IN (...)", column.c_str())));
        i = pos;
      } else {
        ++i;
      }
    }
  }

 private:
  /// Matches `colref = literal` starting at `i`.
  static bool MatchEquality(const TokenList& tokens, size_t i, ColRef* ref,
                            size_t* end) {
    if (!ParseColRef(tokens, i, ref)) return false;
    if (ref->end >= tokens.size() || !tokens[ref->end].IsOperator("=")) {
      return false;
    }
    size_t lit = ref->end + 1;
    if (lit >= tokens.size() || !IsLiteral(tokens[lit])) return false;
    *end = lit + 1;
    return true;
  }
};

// ---------------------------------------------------------------------------
// 6. redundant-distinct: SELECT DISTINCT combined with GROUP BY at the
//    same query level — grouping already deduplicates the output.
// ---------------------------------------------------------------------------
class RedundantDistinctRule : public Rule {
 public:
  std::string_view id() const override { return "redundant-distinct"; }
  Severity severity() const override { return Severity::kWarning; }
  std::string_view summary() const override {
    return "SELECT DISTINCT is redundant when the level also has GROUP BY";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    const TokenList& tokens = *ctx.tokens;
    struct Frame {
      size_t distinct_token = std::string::npos;
      bool group_by = false;
    };
    std::vector<Frame> stack(1);
    auto emit = [&](const Frame& f) {
      if (f.distinct_token != std::string::npos && f.group_by) {
        out->push_back(MakeDiagnostic(
            *this, ctx,
            TokenSpan(tokens, f.distinct_token, f.distinct_token),
            "DISTINCT is redundant: GROUP BY already deduplicates the "
            "output rows",
            "drop DISTINCT"));
      }
    };
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.IsPunct('(')) {
        stack.emplace_back();
      } else if (t.IsPunct(')')) {
        if (stack.size() > 1) {
          emit(stack.back());
          stack.pop_back();
        }
      } else if (t.IsKeyword("DISTINCT") && i > 0 &&
                 tokens[i - 1].IsKeyword("SELECT")) {
        stack.back().distinct_token = i;
      } else if (t.IsKeyword("GROUP") && i + 1 < tokens.size() &&
                 tokens[i + 1].IsKeyword("BY")) {
        stack.back().group_by = true;
      }
    }
    while (!stack.empty()) {
      emit(stack.back());
      stack.pop_back();
    }
  }
};

// ---------------------------------------------------------------------------
// 7. predicate-contradiction: AND-ed predicates that can never be true
//    (errors) and trivially-true/false predicates like 1 = 1 (warnings).
//    Conjunction reasoning is skipped entirely for queries containing OR.
// ---------------------------------------------------------------------------
class ContradictionRule : public Rule {
 public:
  std::string_view id() const override { return "predicate-contradiction"; }
  Severity severity() const override { return Severity::kError; }
  std::string_view summary() const override {
    return "predicates that are contradictory (always false) or "
           "tautological (always true)";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    CheckTautologies(ctx, out);
    if (!ContainsOr(*ctx.tokens)) CheckShape(*ctx.shape, ctx, out);
  }

 private:
  void CheckTautologies(const QueryContext& ctx,
                        std::vector<Diagnostic>* out) const {
    const TokenList& tokens = *ctx.tokens;
    std::vector<char> mask = PredicateMask(tokens);
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (!mask[i]) continue;
      // literal op literal with identical text: `1 = 1`, `1 <> 1`.
      if (IsLiteral(tokens[i]) && IsComparisonOp(tokens[i + 1]) &&
          IsLiteral(tokens[i + 2]) &&
          tokens[i].type == tokens[i + 2].type &&
          tokens[i].text == tokens[i + 2].text) {
        bool always_true = tokens[i + 1].text == "=" ||
                           tokens[i + 1].text == "<=" ||
                           tokens[i + 1].text == ">=";
        out->push_back(MakeDiagnostic(
            *this, ctx, TokenSpan(tokens, i, i + 2),
            always_true ? "predicate is always true"
                        : "predicate is always false",
            "remove the constant predicate",
            always_true ? Severity::kWarning : Severity::kError));
        continue;
      }
      // colref op colref with identical reference: `x = x`, `t.a <> t.a`.
      ColRef left;
      if (ParseColRef(tokens, i, &left) && left.end < tokens.size() &&
          IsComparisonOp(tokens[left.end])) {
        ColRef right;
        if (ParseColRef(tokens, left.end + 1, &right) &&
            left.qualifier == right.qualifier &&
            left.column == right.column) {
          const std::string& op = tokens[left.end].text;
          bool always_true = op == "=" || op == "<=" || op == ">=";
          out->push_back(MakeDiagnostic(
              *this, ctx, TokenSpan(tokens, left.begin, right.end - 1),
              always_true
                  ? "column compared with itself: predicate is always true"
                  : "column compared with itself: predicate is always "
                    "false",
              "remove or fix the self-comparison",
              always_true ? Severity::kWarning : Severity::kError));
        }
      }
    }
  }

  struct Bounds {
    double lower = -1e308;
    double upper = 1e308;
    bool has_lower = false;
    bool has_upper = false;
    std::set<std::string> equals_string;
    std::set<double> equals_number;
  };

  static bool ParseNumber(const std::string& text, double* out) {
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == text.c_str()) return false;
    *out = v;
    return true;
  }

  void CheckShape(const QueryShape& shape, const QueryContext& ctx,
                  std::vector<Diagnostic>* out) const {
    std::map<std::string, Bounds> bounds;
    for (const Predicate& p : shape.filters) {
      if (p.column.empty() || p.literals.empty()) continue;
      std::string key = p.qualifier.empty()
                            ? p.column
                            : p.qualifier + "." + p.column;
      Bounds& b = bounds[key];
      double v = 0.0;
      if (p.op == "=") {
        if (p.literal_is_string) {
          b.equals_string.insert(p.literals.front());
        } else if (ParseNumber(p.literals.front(), &v)) {
          b.equals_number.insert(v);
        }
      } else if (!p.literal_is_string &&
                 ParseNumber(p.literals.front(), &v)) {
        if (p.op == "<" || p.op == "<=") {
          b.upper = std::min(b.upper, v);
          b.has_upper = true;
        } else if (p.op == ">" || p.op == ">=") {
          b.lower = std::max(b.lower, v);
          b.has_lower = true;
        } else if (p.op == "BETWEEN" && p.literals.size() >= 2) {
          double hi = 0.0;
          if (ParseNumber(p.literals[1], &hi)) {
            b.lower = std::max(b.lower, v);
            b.upper = std::min(b.upper, hi);
            b.has_lower = b.has_upper = true;
          }
        }
      }
    }
    for (const auto& [column, b] : bounds) {
      if (b.equals_string.size() > 1 || b.equals_number.size() > 1) {
        out->push_back(MakeDiagnostic(
            *this, ctx, Span{},
            util::StrFormat("'%s' is required to equal two different "
                            "values at once",
                            column.c_str()),
            "one of the conjoined equality predicates must be wrong"));
        continue;
      }
      if (b.has_lower && b.has_upper && b.lower > b.upper) {
        out->push_back(MakeDiagnostic(
            *this, ctx, Span{},
            util::StrFormat("range predicates on '%s' are contradictory "
                            "(lower bound %g above upper bound %g)",
                            column.c_str(), b.lower, b.upper),
            "the conjunction selects no rows; fix the bounds"));
        continue;
      }
      if (b.equals_number.size() == 1 && (b.has_lower || b.has_upper)) {
        double v = *b.equals_number.begin();
        if ((b.has_lower && v < b.lower) || (b.has_upper && v > b.upper)) {
          out->push_back(MakeDiagnostic(
              *this, ctx, Span{},
              util::StrFormat("equality on '%s' falls outside its range "
                              "predicates",
                              column.c_str()),
              "the conjunction selects no rows; fix the bounds"));
        }
      }
    }
    for (const QueryShape& sub : shape.subqueries) CheckShape(sub, ctx, out);
  }
};

// ---------------------------------------------------------------------------
// 8. correlated-subquery: a subquery referencing columns or aliases of an
//    enclosing level — a decorrelation (rewrite to join) candidate.
// ---------------------------------------------------------------------------
class CorrelatedSubqueryRule : public Rule {
 public:
  std::string_view id() const override { return "correlated-subquery"; }
  Severity severity() const override { return Severity::kInfo; }
  std::string_view summary() const override {
    return "correlated subquery is a decorrelation (join rewrite) "
           "candidate";
  }

  void Check(const QueryContext& ctx,
             std::vector<Diagnostic>* out) const override {
    std::vector<const QueryShape*> ancestors;
    Walk(*ctx.shape, ctx, &ancestors, out);
  }

 private:
  static bool ResolvesLocally(const QueryShape& shape,
                              const std::string& qualifier) {
    return !shape.ResolveQualifier(qualifier).empty();
  }

  /// A column (bare) or qualifier reference that is foreign to `shape` but
  /// owned by an ancestor level.
  std::string FindOuterReference(
      const QueryShape& shape, const QueryContext& ctx,
      const std::vector<const QueryShape*>& ancestors) const {
    auto check_side = [&](const std::string& qualifier,
                          const std::string& column) -> std::string {
      if (!qualifier.empty()) {
        if (ResolvesLocally(shape, qualifier)) return "";
        for (const QueryShape* a : ancestors) {
          if (ResolvesLocally(*a, qualifier)) {
            return qualifier + "." + column;
          }
        }
        return "";
      }
      if (ctx.schema == nullptr || column.empty()) return "";
      std::string owner = ctx.schema->TableOfColumn(column);
      if (owner.empty() || ShapeHasTable(shape, owner)) return "";
      for (const QueryShape* a : ancestors) {
        if (ShapeHasTable(*a, owner)) return column;
      }
      return "";
    };
    for (const JoinCondition& j : shape.joins) {
      std::string ref = check_side(j.left_qualifier, j.left_column);
      if (!ref.empty()) return ref;
      ref = check_side(j.right_qualifier, j.right_column);
      if (!ref.empty()) return ref;
    }
    for (const Predicate& p : shape.filters) {
      std::string ref = check_side(p.qualifier, p.column);
      if (!ref.empty()) return ref;
    }
    return "";
  }

  void Walk(const QueryShape& shape, const QueryContext& ctx,
            std::vector<const QueryShape*>* ancestors,
            std::vector<Diagnostic>* out) const {
    if (!ancestors->empty()) {
      std::string ref = FindOuterReference(shape, ctx, *ancestors);
      if (!ref.empty()) {
        out->push_back(MakeDiagnostic(
            *this, ctx, Span{},
            util::StrFormat("subquery is correlated on outer column '%s'",
                            ref.c_str()),
            "consider decorrelating: rewrite the subquery as a join or a "
            "grouped derived table"));
      }
    }
    ancestors->push_back(&shape);
    for (const QueryShape& sub : shape.subqueries) {
      Walk(sub, ctx, ancestors, out);
    }
    ancestors->pop_back();
  }
};

// ---------------------------------------------------------------------------
// 9. unparameterized-literals: workload-level — one normalized template
//    executed with many distinct literal bindings and no bind parameters.
// ---------------------------------------------------------------------------
class UnparameterizedLiteralsRule : public Rule {
 public:
  std::string_view id() const override { return "unparameterized-literals"; }
  Severity severity() const override { return Severity::kInfo; }
  std::string_view summary() const override {
    return "hot template executed with many distinct literal bindings and "
           "no bind parameters";
  }

  void CheckWorkload(const WorkloadContext& ctx,
                     std::vector<Diagnostic>* out) const override {
    for (const TemplateGroup& g : *ctx.templates) {
      if (g.has_parameters || g.literal_tokens == 0) continue;
      if (g.distinct_texts < ctx.hot_template_threshold) continue;
      Diagnostic d;
      d.rule_id = std::string(id());
      d.severity = severity();
      d.message = util::StrFormat(
          "template executed %zu times with %zu distinct literal bindings "
          "and no bind parameters",
          g.query_indices.size(), g.distinct_texts);
      d.fix_hint =
          "replace the literals with bind parameters so plans and "
          "embeddings cache per template";
      d.query_index =
          g.query_indices.empty() ? 0 : g.query_indices.front();
      out->push_back(std::move(d));
    }
  }
};

}  // namespace

RuleRegistry RuleRegistry::Builtin() {
  RuleRegistry registry;
  registry.Register(std::make_unique<CartesianProductRule>());
  registry.Register(std::make_unique<MissingJoinPredicateRule>());
  registry.Register(std::make_unique<NonSargableRule>());
  registry.Register(std::make_unique<SelectStarRule>());
  registry.Register(std::make_unique<OrEqualityChainRule>());
  registry.Register(std::make_unique<RedundantDistinctRule>());
  registry.Register(std::make_unique<ContradictionRule>());
  registry.Register(std::make_unique<CorrelatedSubqueryRule>());
  registry.Register(std::make_unique<UnparameterizedLiteralsRule>());
  return registry;
}

}  // namespace querc::sql::lint
