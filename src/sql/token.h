#ifndef QUERC_SQL_TOKEN_H_
#define QUERC_SQL_TOKEN_H_

#include <cstddef>
#include <string>
#include <vector>

namespace querc::sql {

/// Lexical classes produced by the dialect-aware lexer.
enum class TokenType {
  kKeyword,           // SELECT, FROM, GROUP, ...
  kIdentifier,        // bare identifiers: lineitem, l_orderkey
  kQuotedIdentifier,  // "Name", [Name], `Name` (quotes stripped)
  kNumber,            // 42, 3.14, 1e-5
  kString,            // 'abc' (quotes stripped, '' unescaped)
  kOperator,          // = <> <= >= || :: + - * / % .
  kPunct,             // ( ) , ;
  kParameter,         // ? or :name / @name / $1 placeholders
  kComment,           // -- ... or /* ... */ (only if kept)
  kEnd,               // end-of-input sentinel
};

/// Returns a stable name for `type` (e.g. "Keyword").
const char* TokenTypeName(TokenType type);

/// One lexical token. `text` holds the canonical content: keywords are
/// upper-cased, quoted identifiers/strings have their delimiters stripped.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;  // byte offset of the token start in the input

  bool IsKeyword(const char* kw) const;
  bool IsPunct(char c) const {
    return type == TokenType::kPunct && text.size() == 1 && text[0] == c;
  }
  bool IsOperator(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

using TokenList = std::vector<Token>;

}  // namespace querc::sql

#endif  // QUERC_SQL_TOKEN_H_
