#ifndef QUERC_OBS_EXPORT_H_
#define QUERC_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace querc::obs {

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` (and `# HELP` when registered) comment
/// per family, `name{labels} value` samples, and for histograms the
/// cumulative `_bucket{le=...}` series (empty buckets elided) plus `_sum`
/// and `_count`. `prefix` restricts the export to metric names starting
/// with it ("" = everything).
std::string ExportPrometheus(const MetricsRegistry& registry,
                             const std::string& prefix = "");
std::string ExportPrometheus();

/// Renders the registry as a JSON snapshot:
///   {"counters": [{"name","labels","value"}, ...],
///    "gauges":   [...],
///    "histograms": [{"name","labels","count","sum","min","max","mean",
///                    "p50","p90","p99"}, ...]}
/// Histograms export summary statistics rather than raw buckets — the
/// machine-readable form consumed by bench trajectories and dashboards.
std::string ExportJson(const MetricsRegistry& registry,
                       const std::string& prefix = "");
std::string ExportJson();

}  // namespace querc::obs

#endif  // QUERC_OBS_EXPORT_H_
