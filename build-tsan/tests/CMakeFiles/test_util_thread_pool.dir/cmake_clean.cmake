file(REMOVE_RECURSE
  "CMakeFiles/test_util_thread_pool.dir/test_util_thread_pool.cc.o"
  "CMakeFiles/test_util_thread_pool.dir/test_util_thread_pool.cc.o.d"
  "test_util_thread_pool"
  "test_util_thread_pool.pdb"
  "test_util_thread_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
