#include "obs/trace.h"

#include <cstdio>

#include "obs/flight_recorder.h"

namespace querc::obs {

namespace {

thread_local Trace* g_current_trace = nullptr;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Histogram& StageHistogram(const std::string& stage) {
  return MetricsRegistry::Global().GetHistogram(
      "querc_stage_ms", {{"stage", stage}},
      "Per-stage latency of the query pipeline in milliseconds");
}

void Span::End() {
  if (hist_ == nullptr) return;
  double ms = MsSince(start_);
  hist_->Record(ms);
  if (stage_ != nullptr) {
    if (g_current_trace != nullptr) g_current_trace->AddStage(stage_, ms);
    TraceContext ctx = CurrentContext();
    if (ctx.valid()) {
      FlightRecorder& rec = FlightRecorder::Global();
      int64_t ts = rec.ToUs(start_);
      rec.RecordSpan(ctx, ts, static_cast<int64_t>(ms * 1000.0), stage_);
    }
  }
  hist_ = nullptr;
}

Trace::Trace(const char* name, Histogram* total_hist)
    : name_(name),
      total_hist_(total_hist),
      parent_(g_current_trace),
      start_(Clock::now()) {
  // Join the context adopted from whoever fanned this work out (same
  // trace id, fresh span id), or own a new trace when there is none.
  TraceContext current = CurrentContext();
  owns_trace_ = !current.valid();
  ctx_.trace_id = owns_trace_ ? NewTraceId() : current.trace_id;
  ctx_.span_id = NewSpanId();
  prev_ctx_ = InstallContext(ctx_);
  g_current_trace = this;
}

Trace::~Trace() {
  FlightRecorder& rec = FlightRecorder::Global();
  int64_t ts = rec.ToUs(start_);
  int64_t dur = rec.NowUs() - ts;
  if (dur < 1) dur = 1;  // "X" events with dur 0 vanish in trace viewers
  rec.RecordSpan(ctx_, ts, dur, name_, owns_trace_);
  if (total_hist_ != nullptr) total_hist_->Record(ElapsedMs());
  InstallContext(prev_ctx_);
  g_current_trace = parent_;
}

Trace* Trace::Current() { return g_current_trace; }

double Trace::ElapsedMs() const { return MsSince(start_); }

std::string Trace::Summary() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", ElapsedMs());
  std::string out = std::string(name_) + " " + buf;
  for (const auto& [stage, ms] : stages_) {
    std::snprintf(buf, sizeof(buf), " %s=%.3fms", stage, ms);
    out += buf;
  }
  return out;
}

}  // namespace querc::obs
