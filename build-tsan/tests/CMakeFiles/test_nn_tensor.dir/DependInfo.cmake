
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nn_tensor.cc" "tests/CMakeFiles/test_nn_tensor.dir/test_nn_tensor.cc.o" "gcc" "tests/CMakeFiles/test_nn_tensor.dir/test_nn_tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/querc/CMakeFiles/querc_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/engine/CMakeFiles/querc_engine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ml/CMakeFiles/querc_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/embed/CMakeFiles/querc_embed.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/querc_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/querc_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sql/CMakeFiles/querc_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/querc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
