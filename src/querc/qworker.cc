#include "querc/qworker.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/failpoint.h"

namespace querc::core {

namespace {

/// Registry metrics shared by every worker; resolved once, then the hot
/// path touches only their atomics (no registry mutex, no lock).
obs::Histogram& GlobalProcessHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "querc_qworker_process_ms", {},
      "End-to-end QWorker::Process latency in milliseconds, all workers");
  return hist;
}

obs::Counter& GlobalQueriesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_qworker_queries_total", {},
      "Queries processed by all QWorkers");
  return counter;
}

obs::Counter& DeadlineExceededCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_deadline_exceeded_total", {},
      "Queries forwarded with partial predictions after the Process "
      "deadline expired");
  return counter;
}

obs::Counter& RetriesCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_retries_total", {}, "Sink retry attempts issued");
  return counter;
}

obs::Counter& RetryBudgetExhaustedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_retry_budget_exhausted_total", {},
      "Retries suppressed because the shard's retry budget was dry");
  return counter;
}

obs::Counter& FallbackPredictionsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_fallback_predictions_total", {},
      "Predictions served by a fallback classifier (primary degraded)");
  return counter;
}

obs::Counter& ClassifierSkippedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_classifier_skipped_total", {},
      "Tasks skipped with no prediction (breaker open, no fallback)");
  return counter;
}

obs::Counter& LintAutodisabledCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_lint_autodisabled_total", {},
      "Queries whose lint stage was skipped under deadline pressure");
  return counter;
}

obs::Counter& LintStageErrorsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_lint_stage_errors_total", {},
      "Lint stage failures (injected or thrown); the query still flowed");
  return counter;
}

obs::Counter& LintTemplatesDroppedCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_lint_templates_dropped_total", {},
      "Offending templates displaced from (or refused by) the bounded "
      "per-worker offender tracker; their per-template counts are gone "
      "but were never silently lost");
  return counter;
}

/// Per-worker offender-tracker configuration: the cap maps onto the
/// aggregator's bounded capacity (min 1 — a zero cap is handled by the
/// caller, which skips recording entirely).
util::ConcurrentAggregator::Options LintAggregatorOptions(size_t cap) {
  util::ConcurrentAggregator::Options options;
  options.capacity = cap == 0 ? 1 : cap;
  options.shards = 4;
  return options;
}

obs::Counter& WorkerErrorsCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "querc_worker_errors_total", {},
      "Queries whose Process call failed outright inside a batch");
  return counter;
}

obs::Counter& SinkErrorsCounterSlow(const char* sink) {
  return obs::MetricsRegistry::Global().GetCounter(
      "querc_sink_errors_total", {{"sink", sink}},
      "Sink invocation failures (exception or injected), per sink");
}

/// The two sink labels are fixed ("database"/"training"), so each series
/// is cached in its own function-local static — the failure path then
/// increments a plain atomic instead of taking the registry mutex. An
/// unknown label falls back to the registry lookup.
obs::Counter& SinkErrorsCounter(const char* sink) {
  if (std::strcmp(sink, "database") == 0) {
    static obs::Counter& counter = SinkErrorsCounterSlow("database");
    return counter;
  }
  if (std::strcmp(sink, "training") == 0) {
    static obs::Counter& counter = SinkErrorsCounterSlow("training");
    return counter;
  }
  return SinkErrorsCounterSlow(sink);
}

obs::Counter& SinkSkippedCounterSlow(const char* sink) {
  return obs::MetricsRegistry::Global().GetCounter(
      "querc_sink_skipped_total", {{"sink", sink}},
      "Sink invocations refused by an open circuit breaker, per sink");
}

obs::Counter& SinkSkippedCounter(const char* sink) {
  if (std::strcmp(sink, "database") == 0) {
    static obs::Counter& counter = SinkSkippedCounterSlow("database");
    return counter;
  }
  if (std::strcmp(sink, "training") == 0) {
    static obs::Counter& counter = SinkSkippedCounterSlow("training");
    return counter;
  }
  return SinkSkippedCounterSlow(sink);
}

obs::Counter& ClassifierErrorsCounter(const std::string& task) {
  return obs::MetricsRegistry::Global().GetCounter(
      "querc_classifier_errors_total", {{"task", task}},
      "Primary classifier prediction failures, per task");
}

/// Jitter source for retry backoff: one deterministic stream per thread,
/// forked off a process-wide seed sequence (thread-safe without locking
/// the worker).
util::Rng& ThreadRng() {
  static std::atomic<uint64_t> seeds{0x5eed5eed5eed5eedULL};
  thread_local util::Rng rng(seeds.fetch_add(0x9e3779b97f4a7c15ULL,
                                             std::memory_order_relaxed));
  return rng;
}

}  // namespace

void LintTemplateStats::Merge(const LintTemplateStats& other) {
  instances += other.instances;
  diagnostics += other.diagnostics;
  if (fingerprint.empty()) fingerprint = other.fingerprint;
  if (example_text.empty()) example_text = other.example_text;
}

void LatencyStats::Merge(const LatencyStats& other) {
  if (other.count == 0) return;
  min_ms = count == 0 ? other.min_ms : std::min(min_ms, other.min_ms);
  max_ms = count == 0 ? other.max_ms : std::max(max_ms, other.max_ms);
  count += other.count;
  total_ms += other.total_ms;
}

QWorker::QWorker(const Options& options)
    : options_(options),
      sink_retry_(options.sink_retry),
      retry_budget_(options.retry_budget),
      lint_templates_(LintAggregatorOptions(options.lint_template_cap)) {
  classifiers_.store(std::make_shared<const ClassifierMap>());
  fallbacks_.store(std::make_shared<const ClassifierMap>());
  task_breakers_.store(std::make_shared<const BreakerMap>());
  if (options_.enable_breakers) {
    database_breaker_ = std::make_unique<CircuitBreaker>(
        options_.application + ":sink_database", options_.breaker);
    training_breaker_ = std::make_unique<CircuitBreaker>(
        options_.application + ":sink_training", options_.breaker);
    if (options_.per_tenant_sink_breakers) {
      TenantBreakerMap::Options tenant;
      tenant.breaker = options_.breaker;
      tenant.capacity = options_.tenant_breaker_cap;
      tenant.name_prefix = options_.application + ":sink_database";
      database_tenant_breakers_ = std::make_unique<TenantBreakerMap>(tenant);
      tenant.name_prefix = options_.application + ":sink_training";
      training_tenant_breakers_ = std::make_unique<TenantBreakerMap>(tenant);
    }
  }
  if (options_.embed_cache_capacity > 0) {
    embed::EmbeddingCache::Options cache_options;
    cache_options.capacity = options_.embed_cache_capacity;
    cache_options.shards = options_.embed_cache_shards;
    embed_cache_ = std::make_unique<embed::EmbeddingCache>(cache_options);
  }
  // Resolve one hit counter per lint rule up front; registration takes the
  // registry mutex, but Process then increments plain atomics.
  for (const auto& rule : lint_engine_.registry().rules()) {
    std::string id(rule->id());
    lint_counters_[id] = &obs::MetricsRegistry::Global().GetCounter(
        "querc_lint_hits_total", {{"rule", id}},
        "Lint diagnostics emitted per rule, all workers");
  }
}

void QWorker::Deploy(std::shared_ptr<const Classifier> classifier) {
  util::MutexLock lock(&deploy_mu_);
  const std::string& task = classifier->task_name();
  auto next = std::make_shared<ClassifierMap>(*classifiers_.load());
  (*next)[task] = std::move(classifier);
  if (options_.enable_breakers) {
    auto breakers = task_breakers_.load();
    if (breakers->find(task) == breakers->end()) {
      auto next_breakers = std::make_shared<BreakerMap>(*breakers);
      (*next_breakers)[task] = std::make_shared<CircuitBreaker>(
          options_.application + ":task_" + task, options_.breaker);
      task_breakers_.store(std::move(next_breakers));
    }
  }
  classifiers_.store(std::move(next));
}

void QWorker::DeployAll(
    const std::vector<std::shared_ptr<const Classifier>>& classifiers) {
  util::MutexLock lock(&deploy_mu_);
  auto next = std::make_shared<ClassifierMap>(*classifiers_.load());
  std::shared_ptr<BreakerMap> next_breakers;
  for (const auto& classifier : classifiers) {
    const std::string& task = classifier->task_name();
    (*next)[task] = classifier;
    if (options_.enable_breakers) {
      const BreakerMap& current =
          next_breakers ? *next_breakers : *task_breakers_.load();
      if (current.find(task) == current.end()) {
        if (!next_breakers) {
          next_breakers = std::make_shared<BreakerMap>(current);
        }
        (*next_breakers)[task] = std::make_shared<CircuitBreaker>(
            options_.application + ":task_" + task, options_.breaker);
      }
    }
  }
  if (next_breakers) task_breakers_.store(std::move(next_breakers));
  classifiers_.store(std::move(next));
}

bool QWorker::Undeploy(const std::string& task_name) {
  util::MutexLock lock(&deploy_mu_);
  auto current = classifiers_.load();
  if (current->find(task_name) == current->end()) return false;
  auto next = std::make_shared<ClassifierMap>(*current);
  next->erase(task_name);
  classifiers_.store(std::move(next));
  auto breakers = task_breakers_.load();
  if (breakers->find(task_name) != breakers->end()) {
    auto next_breakers = std::make_shared<BreakerMap>(*breakers);
    next_breakers->erase(task_name);
    task_breakers_.store(std::move(next_breakers));
  }
  return true;
}

void QWorker::DeployFallback(std::shared_ptr<const Classifier> classifier) {
  util::MutexLock lock(&deploy_mu_);
  auto next = std::make_shared<ClassifierMap>(*fallbacks_.load());
  (*next)[classifier->task_name()] = std::move(classifier);
  fallbacks_.store(std::move(next));
}

bool QWorker::UndeployFallback(const std::string& task_name) {
  util::MutexLock lock(&deploy_mu_);
  auto current = fallbacks_.load();
  if (current->find(task_name) == current->end()) return false;
  auto next = std::make_shared<ClassifierMap>(*current);
  next->erase(task_name);
  fallbacks_.store(std::move(next));
  return true;
}

void QWorker::set_database_sink(DatabaseSink sink) {
  database_.store(std::make_shared<const DatabaseSink>(std::move(sink)));
}

void QWorker::set_training_sink(TrainingSink sink) {
  training_.store(std::make_shared<const TrainingSink>(std::move(sink)));
}

std::shared_ptr<const QWorker::ClassifierMap> QWorker::classifiers() const {
  return classifiers_.load();
}

std::shared_ptr<const QWorker::ClassifierMap> QWorker::fallbacks() const {
  return fallbacks_.load();
}

size_t QWorker::num_classifiers() const {
  return classifiers_.load()->size();
}

std::deque<workload::LabeledQuery> QWorker::window() const {
  util::MutexLock lock(&window_mu_);
  return window_;
}

LatencyStats QWorker::latency() const {
  obs::HistogramSnapshot snap = latency_hist_.Snapshot();
  LatencyStats stats;
  stats.count = snap.count;
  if (snap.count > 0) stats.min_ms = snap.min;
  stats.max_ms = snap.max;
  stats.total_ms = snap.sum;
  return stats;
}

std::vector<std::pair<std::string, CircuitBreaker::State>>
QWorker::BreakerStates() const {
  std::vector<std::pair<std::string, CircuitBreaker::State>> out;
  if (database_breaker_) {
    out.emplace_back(database_breaker_->name(), database_breaker_->state());
  }
  if (training_breaker_) {
    out.emplace_back(training_breaker_->name(), training_breaker_->state());
  }
  if (database_tenant_breakers_) {
    auto states = database_tenant_breakers_->States();
    out.insert(out.end(), states.begin(), states.end());
  }
  if (training_tenant_breakers_) {
    auto states = training_tenant_breakers_->States();
    out.insert(out.end(), states.begin(), states.end());
  }
  auto breakers = task_breakers_.load();
  for (const auto& [task, breaker] : *breakers) {
    out.emplace_back(breaker->name(), breaker->state());
  }
  return out;
}

util::Status QWorker::InvokeSink(const char* sink_label,
                                 std::string_view failpoint_name,
                                 CircuitBreaker* breaker,
                                 const Deadline& deadline,
                                 const std::function<void()>& call) {
  double backoff_ms = 0.0;
  for (int attempt = 1;; ++attempt) {
    if (breaker != nullptr && !breaker->Allow()) {
      SinkSkippedCounter(sink_label).Increment();
      return util::Status::Unavailable(std::string(sink_label) +
                                       " sink breaker open");
    }
    util::Status status = util::MaybeFail(failpoint_name);
    if (status.ok()) {
      try {
        call();
      } catch (const std::exception& e) {
        status = util::Status::Internal(std::string(sink_label) +
                                        " sink: " + e.what());
      } catch (...) {
        status =
            util::Status::Internal(std::string(sink_label) + " sink threw");
      }
    }
    if (status.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
      retry_budget_.RecordSuccess();
      return status;
    }
    if (breaker != nullptr) breaker->RecordFailure();
    SinkErrorsCounter(sink_label).Increment();
    obs::FlightRecorder::Global().RecordInstant(
        obs::EventKind::kError, sink_label, static_cast<uint8_t>(attempt));
    if (attempt >= sink_retry_.max_attempts()) return status;
    if (deadline.Expired()) return status;
    if (!retry_budget_.TrySpend()) {
      RetryBudgetExhaustedCounter().Increment();
      return status;
    }
    RetriesCounter().Increment();
    obs::FlightRecorder::Global().RecordInstant(
        obs::EventKind::kRetry, sink_label, static_cast<uint8_t>(attempt));
    backoff_ms = sink_retry_.NextBackoffMs(backoff_ms, ThreadRng());
    if (backoff_ms > 0.0) {
      // Never sleep past the deadline: a retry that cannot finish in
      // budget is not worth waiting for.
      double sleep_ms = std::min(backoff_ms, deadline.RemainingMs());
      if (sleep_ms > 0.0 && std::isfinite(sleep_ms)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      } else if (std::isinf(sleep_ms)) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
  }
}

ProcessedQuery QWorker::Process(const workload::LabeledQuery& query) {
  // The trace scopes this thread's stage spans (embed/classify inside the
  // classifiers, lex/normalize inside the embedder, the sinks below) to
  // this query; all recording is atomic histogram increments — no mutex
  // is taken for telemetry on this path.
  obs::Trace trace("qworker_process");
  ProcessedQuery out;
  out.query = query;
  Deadline deadline;
  if (options_.deadline_ms > 0.0) {
    deadline = Deadline::After(options_.deadline_ms, options_.breaker.clock);
  }
  // One snapshot load pins the classifier set for this whole query:
  // a racing Deploy/Undeploy publishes a *new* map and cannot mutate the
  // one we hold, so the prediction set is always internally consistent.
  std::shared_ptr<const ClassifierMap> classifiers = classifiers_.load();
  std::shared_ptr<const BreakerMap> breakers = task_breakers_.load();
  std::shared_ptr<const ClassifierMap> fallbacks = fallbacks_.load();

  // Shared-embedding fast path: tokenize the query once, then embed at
  // most once per *distinct embedder instance* across every deployed task
  // (primaries and fallbacks alike) — instead of each classifier
  // re-running lex + normalize + inference. With the template cache
  // enabled, repeats of the same normalized fingerprint skip inference
  // entirely; cached and recomputed vectors are bit-identical (the key is
  // the exact Embed() input), so predictions cannot change.
  std::optional<std::vector<std::string>> words;
  std::map<uint64_t, std::shared_ptr<const nn::Vec>> shared_embeddings;
  auto embedding_for =
      [&](const Classifier& classifier) -> const nn::Vec& {
    const embed::Embedder& embedder = classifier.embedder();
    auto it = shared_embeddings.find(embedder.instance_id());
    if (it == shared_embeddings.end()) {
      if (!words.has_value()) {
        words = embed::TokenizeForEmbedding(query.text, query.dialect);
      }
      std::shared_ptr<const nn::Vec> vec;
      if (embed_cache_) {
        static obs::Histogram& cache_hist =
            obs::StageHistogram("embed_cache");
        obs::Span cache_span(&cache_hist, "embed_cache");
        vec = embed_cache_->GetOrCompute(
            embed::EmbeddingCache::KeyFor(embedder, *words), [&] {
              static obs::Histogram& hist = obs::StageHistogram("embed");
              obs::Span span(&hist, "embed");
              return embedder.Embed(*words);
            });
      } else {
        static obs::Histogram& hist = obs::StageHistogram("embed");
        obs::Span span(&hist, "embed");
        vec = std::make_shared<const nn::Vec>(embedder.Embed(*words));
      }
      it = shared_embeddings.emplace(embedder.instance_id(), std::move(vec))
               .first;
    }
    return *it->second;
  };

  for (const auto& [task, classifier] : *classifiers) {
    if (deadline.Expired()) {
      // Partial predictions beat a blocked query path: stop classifying
      // and let the query flow downstream with what we have.
      out.deadline_exceeded = true;
      DeadlineExceededCounter().Increment();
      break;
    }
    CircuitBreaker* breaker = nullptr;
    if (auto it = breakers->find(task); it != breakers->end()) {
      breaker = it->second.get();
    }
    bool attempted = false;
    util::Status status;
    if (breaker == nullptr || breaker->Allow()) {
      attempted = true;
      status = util::MaybeFail("qworker.classifier_predict");
      std::string prediction;
      if (status.ok()) {
        try {
          prediction = classifier->PredictFromEmbedding(
              embedding_for(*classifier));
        } catch (const std::exception& e) {
          status = util::Status::Internal(std::string("classifier ") + task +
                                          ": " + e.what());
        } catch (...) {
          status =
              util::Status::Internal("classifier " + task + " threw");
        }
      }
      if (status.ok()) {
        if (breaker != nullptr) breaker->RecordSuccess();
        out.predictions[task] = std::move(prediction);
        continue;
      }
      if (breaker != nullptr) breaker->RecordFailure();
      ClassifierErrorsCounter(task).Increment();
      obs::FlightRecorder::Global().RecordInstant(obs::EventKind::kError,
                                                  task.c_str());
    }
    (void)attempted;
    // Degradation ladder: primary unavailable or failed — try the
    // deployed fallback, else skip the task with a counter.
    if (auto fit = fallbacks->find(task); fit != fallbacks->end()) {
      try {
        out.predictions[task] =
            fit->second->PredictFromEmbedding(embedding_for(*fit->second));
        out.degraded_tasks.push_back(task);
        FallbackPredictionsCounter().Increment();
        continue;
      } catch (...) {
        // Fall through to skip.
      }
    }
    out.skipped_tasks.push_back(task);
    ClassifierSkippedCounter().Increment();
  }
  processed_count_.fetch_add(1, std::memory_order_relaxed);

  bool run_lint = options_.enable_lint;
  if (run_lint && !deadline.infinite()) {
    // Lint is advisory; under deadline pressure it is the first stage to
    // stand down.
    if (out.deadline_exceeded ||
        deadline.RemainingMs() <
            options_.lint_min_deadline_fraction * options_.deadline_ms) {
      run_lint = false;
      LintAutodisabledCounter().Increment();
    }
  }
  if (run_lint) {
    static obs::Histogram& lint_hist = obs::StageHistogram("lint");
    obs::Span lint_span(&lint_hist, "lint");
    util::Status lint_status = util::MaybeFail("qworker.lint");
    sql::lint::QueryLint lint;
    if (lint_status.ok()) {
      try {
        lint = lint_engine_.LintQuery(query.text, 0, query.dialect);
      } catch (...) {
        lint_status = util::Status::Internal("lint stage threw");
      }
    }
    if (!lint_status.ok()) {
      LintStageErrorsCounter().Increment();
    } else if (!lint.diagnostics.empty()) {
      lint_diagnostic_count_.fetch_add(lint.diagnostics.size(),
                                       std::memory_order_relaxed);
      for (const sql::lint::Diagnostic& d : lint.diagnostics) {
        auto it = lint_counters_.find(d.rule_id);
        if (it != lint_counters_.end()) it->second->Increment();
      }
      if (options_.lint_template_cap == 0) {
        // Tracking disabled: the offender is not recorded, but it is
        // *counted* as dropped rather than silently vanishing.
        lint_templates_dropped_.fetch_add(1, std::memory_order_relaxed);
        LintTemplatesDroppedCounter().Increment();
      } else {
        // Lock-free concurrent aggregation (count = instances, weight =
        // diagnostics, tag = first offending text). At the cap, a new
        // template evicts the least-instances entry — a late hot
        // offender still surfaces — and each displaced template bumps
        // the dropped counter.
        auto outcome = lint_templates_.Record(
            lint.fingerprint, /*count_delta=*/1,
            /*weight_delta=*/lint.diagnostics.size(), query.text);
        if (outcome == util::ConcurrentAggregator::Outcome::kEvicted ||
            outcome == util::ConcurrentAggregator::Outcome::kDropped) {
          lint_templates_dropped_.fetch_add(1, std::memory_order_relaxed);
          LintTemplatesDroppedCounter().Increment();
        }
      }
      out.diagnostics = std::move(lint.diagnostics);
    }
  }

  {
    util::MutexLock lock(&window_mu_);
    window_.push_back(query);
    while (window_.size() > options_.window_size) window_.pop_front();
  }

  if (options_.forward_to_database) {
    auto database = database_.load();
    if (database && *database) {
      static obs::Histogram& hist = obs::StageHistogram("sink_database");
      obs::Span span(&hist, "sink_database");
      // With per-tenant scoping the account's own breaker gates the call
      // (the shared_ptr keeps it alive across a concurrent eviction);
      // otherwise the worker-level sink breaker does.
      CircuitBreaker* breaker = database_breaker_.get();
      std::shared_ptr<CircuitBreaker> tenant_breaker;
      if (database_tenant_breakers_) {
        tenant_breaker = database_tenant_breakers_->GetOrCreate(query.account);
        breaker = tenant_breaker.get();
      }
      out.database_status =
          InvokeSink("database", "qworker.sink_database", breaker, deadline,
                     [&database, &query] { (*database)(query); });
    }
  }
  auto training = training_.load();
  if (training && *training) {
    static obs::Histogram& hist = obs::StageHistogram("sink_training");
    obs::Span span(&hist, "sink_training");
    CircuitBreaker* breaker = training_breaker_.get();
    std::shared_ptr<CircuitBreaker> tenant_breaker;
    if (training_tenant_breakers_) {
      tenant_breaker = training_tenant_breakers_->GetOrCreate(query.account);
      breaker = tenant_breaker.get();
    }
    out.training_status =
        InvokeSink("training", "qworker.sink_training", breaker, deadline,
                   [&training, &out] { (*training)(out); });
  }

  double ms = trace.ElapsedMs();
  latency_hist_.Record(ms);
  GlobalProcessHistogram().Record(ms);
  GlobalQueriesCounter().Increment();
  return out;
}

std::vector<LintTemplateStats> QWorker::TopOffendingTemplates(
    size_t n) const {
  // Phase-1 snapshot of the lock-free aggregator (blocks evictions, not
  // the Record hot path); Top() already orders by weight (= diagnostics)
  // then count (= instances).
  std::vector<util::AggregateEntry> top = lint_templates_.Top(n);
  std::vector<LintTemplateStats> templates;
  templates.reserve(top.size());
  for (util::AggregateEntry& entry : top) {
    LintTemplateStats stats;
    stats.fingerprint = std::move(entry.key);
    stats.example_text = std::move(entry.tag);
    stats.instances = static_cast<size_t>(entry.count);
    stats.diagnostics = static_cast<size_t>(entry.weight);
    templates.push_back(std::move(stats));
  }
  return templates;
}

std::vector<ProcessedQuery> QWorker::ProcessBatch(
    const workload::Workload& batch) {
  std::vector<ProcessedQuery> out;
  out.reserve(batch.size());
  for (const auto& q : batch) {
    // A poisoned query must not lose the batch: Process itself converts
    // sink/classifier faults to statuses, and anything that still
    // escapes is caught here so the remaining queries proceed.
    try {
      out.push_back(Process(q));
    } catch (const std::exception& e) {
      ProcessedQuery failed;
      failed.query = q;
      failed.status = util::Status::Internal(std::string("Process: ") +
                                             e.what());
      WorkerErrorsCounter().Increment();
      out.push_back(std::move(failed));
    } catch (...) {
      ProcessedQuery failed;
      failed.query = q;
      failed.status = util::Status::Internal("Process threw");
      WorkerErrorsCounter().Increment();
      out.push_back(std::move(failed));
    }
  }
  return out;
}

}  // namespace querc::core
