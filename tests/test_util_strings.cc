#include "util/string_util.h"

#include <gtest/gtest.h>

namespace querc::util {
namespace {

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt * FROM T"), "select * from t");
  EXPECT_EQ(ToUpper("select"), "SELECT");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nospace"), "nospace");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("SELECT *", "SELECT"));
  EXPECT_FALSE(StartsWith("SE", "SELECT"));
  EXPECT_TRUE(EndsWith("q.sql", ".sql"));
  EXPECT_FALSE(EndsWith("sql", ".sql"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a%b%c", "%", "%%"), "a%%b%%c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("none", "x", "y"), "none");
}

TEST(StringUtilTest, Fnv1aIsStableAndSpreads) {
  EXPECT_EQ(Fnv1a64("lineitem"), Fnv1a64("lineitem"));
  EXPECT_NE(Fnv1a64("lineitem"), Fnv1a64("orders"));
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace querc::util
