// Tests for the engine extensions beyond the paper's baseline setup:
// composite (multi-column) indexes, index storage accounting, the
// advisor's storage budget, and the DTA-style merge phase.

#include <gtest/gtest.h>

#include "engine/advisor.h"
#include "engine/cost_model.h"
#include "workload/tpch_gen.h"

namespace querc::engine {
namespace {

class EngineExtensionsTest : public ::testing::Test {
 protected:
  EngineExtensionsTest() : catalog_(TpchCatalog()), model_(&catalog_) {}
  Catalog catalog_;
  CostModel model_;
};

TEST_F(EngineExtensionsTest, CompositeIndexBeatsSingleColumn) {
  std::string query =
      "SELECT * FROM lineitem WHERE l_shipdate >= '1995-01-01' AND "
      "l_shipdate < '1995-02-01' AND l_shipmode = 'AIR'";
  IndexConfig single = {{"lineitem", {"l_shipdate"}}};
  IndexConfig composite = {{"lineitem", {"l_shipdate", "l_shipmode"}}};
  double single_cost = model_.CostText(query, single).actual_seconds;
  double composite_cost = model_.CostText(query, composite).actual_seconds;
  EXPECT_LT(composite_cost, single_cost);
  // The second key column narrows by its selectivity (1/7 for shipmode).
  EXPECT_GT(composite_cost, single_cost / 10.0);
}

TEST_F(EngineExtensionsTest, CompositeSecondColumnWithoutPredicateIsNeutral) {
  std::string query =
      "SELECT * FROM lineitem WHERE l_shipdate >= '1995-01-01' AND "
      "l_shipdate < '1995-02-01'";
  IndexConfig single = {{"lineitem", {"l_shipdate"}}};
  IndexConfig composite = {{"lineitem", {"l_shipdate", "l_shipmode"}}};
  EXPECT_DOUBLE_EQ(model_.CostText(query, single).actual_seconds,
                   model_.CostText(query, composite).actual_seconds);
}

TEST_F(EngineExtensionsTest, CompositeRequiresLeadingColumnPredicate) {
  // A predicate only on the SECOND key column cannot use the index.
  std::string query = "SELECT * FROM lineitem WHERE l_shipmode = 'AIR'";
  IndexConfig composite = {{"lineitem", {"l_shipdate", "l_shipmode"}}};
  QueryCost cost = model_.CostText(query, composite);
  EXPECT_FALSE(cost.accesses[0].used_index);
}

TEST_F(EngineExtensionsTest, IndexSizeScalesWithRowsAndWidth) {
  double lineitem_idx = IndexSizeMb(catalog_, {"lineitem", {"l_shipdate"}});
  double nation_idx = IndexSizeMb(catalog_, {"nation", {"n_name"}});
  EXPECT_GT(lineitem_idx, 10.0);   // 6M rows x 16 bytes ~ 91 MB
  EXPECT_LT(nation_idx, 0.01);     // 25 rows
  double composite =
      IndexSizeMb(catalog_, {"lineitem", {"l_shipdate", "l_shipmode"}});
  EXPECT_GT(composite, lineitem_idx);
  EXPECT_EQ(IndexSizeMb(catalog_, {"nope", {"x"}}), 0.0);
  EXPECT_EQ(IndexSizeMb(catalog_, {"lineitem", {"nope"}}), 0.0);
  EXPECT_NEAR(ConfigSizeMb(catalog_, {{"lineitem", {"l_shipdate"}},
                                      {"nation", {"n_name"}}}),
              lineitem_idx + nation_idx, 1e-9);
}

class AdvisorExtensionTest : public EngineExtensionsTest {
 protected:
  AdvisorExtensionTest() {
    workload::TpchGenerator::Options options;
    options.instances_per_template = 4;
    workload::TpchGenerator gen(options);
    for (const auto& q : gen.Generate()) texts_.push_back(q.text);
  }
  std::vector<std::string> texts_;
};

TEST_F(AdvisorExtensionTest, StorageBudgetLimitsConfiguration) {
  AdvisorOptions unlimited;
  unlimited.budget_minutes = 30.0;
  TuningAdvisor a1(&model_, unlimited);
  AdvisorResult full = a1.Recommend(texts_);
  ASSERT_FALSE(full.config.empty());
  EXPECT_GT(full.storage_mb, 0.0);

  AdvisorOptions tight = unlimited;
  tight.max_storage_mb = full.storage_mb / 3.0;
  TuningAdvisor a2(&model_, tight);
  AdvisorResult capped = a2.Recommend(texts_);
  EXPECT_LE(capped.storage_mb, tight.max_storage_mb + 1e-9);
  EXPECT_LT(capped.config.size(), full.config.size() + 1);
}

TEST_F(AdvisorExtensionTest, TinyStorageBudgetYieldsSmallTableIndexesOnly) {
  AdvisorOptions options;
  options.budget_minutes = 30.0;
  options.max_storage_mb = 1.0;  // no lineitem/orders index fits
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend(texts_);
  for (const Index& index : result.config) {
    EXPECT_NE(index.table, "lineitem") << index.ToString();
    EXPECT_NE(index.table, "orders") << index.ToString();
  }
}

TEST_F(AdvisorExtensionTest, MergePhaseFusesSameTableIndexes) {
  AdvisorOptions options;
  options.budget_minutes = 60.0;
  options.enable_index_merging = true;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult merged = advisor.Recommend(texts_);

  AdvisorOptions plain = options;
  plain.enable_index_merging = false;
  TuningAdvisor advisor2(&model_, plain);
  AdvisorResult unmerged = advisor2.Recommend(texts_);

  // Merging never hurts the estimated cost, so the merged config's actual
  // runtime must be within a whisker of (usually below) the unmerged one.
  double merged_rt = RunWorkload(model_, texts_, merged.config).total_seconds;
  double plain_rt =
      RunWorkload(model_, texts_, unmerged.config).total_seconds;
  EXPECT_LE(merged_rt, plain_rt * 1.02);
  // When a fusion happened it is visible in the log and in storage.
  bool fused = false;
  for (const Index& index : merged.config) {
    fused |= index.key_columns.size() > 1;
  }
  if (fused) {
    EXPECT_LE(merged.storage_mb, unmerged.storage_mb + 1e-9);
  }
}

TEST_F(AdvisorExtensionTest, MergeDisabledKeepsSingleColumnIndexes) {
  AdvisorOptions options;
  options.budget_minutes = 60.0;
  TuningAdvisor advisor(&model_, options);
  AdvisorResult result = advisor.Recommend(texts_);
  for (const Index& index : result.config) {
    EXPECT_EQ(index.key_columns.size(), 1u);
  }
}

}  // namespace
}  // namespace querc::engine
