#ifndef QUERC_ENGINE_CATALOG_H_
#define QUERC_ENGINE_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace querc::engine {

/// Column types understood by the cost model. Dates are stored as days
/// since 1970-01-01 so range selectivities are plain arithmetic.
enum class ColumnType { kInt, kFloat, kString, kDate };

/// Statistics for one column, sufficient for selectivity estimation.
struct ColumnStats {
  std::string name;
  ColumnType type = ColumnType::kInt;
  double min_value = 0.0;   // numeric/date domain lower bound
  double max_value = 0.0;   // numeric/date domain upper bound
  uint64_t distinct_values = 1;
  double avg_width_bytes = 8.0;
};

/// Statistics for one table.
struct TableStats {
  std::string name;
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;

  /// Bytes per row (sum of column widths).
  double RowWidthBytes() const;
  /// Column by name, or nullptr.
  const ColumnStats* Column(const std::string& column_name) const;
};

/// The schema + statistics catalog the simulated engine plans against.
class Catalog {
 public:
  /// Registers a table. Fails on duplicate names.
  util::Status AddTable(TableStats table);

  const TableStats* Table(const std::string& name) const;

  /// Resolves an unqualified column reference by scanning all tables;
  /// returns the owning table name, or "" if absent/ambiguous. (TPC-H
  /// column names are globally unique, so this is exact there.)
  std::string TableOfColumn(const std::string& column_name) const;

  const std::vector<TableStats>& tables() const { return tables_; }

 private:
  std::vector<TableStats> tables_;
};

/// The TPC-H scale-factor-1 catalog (row counts and column domains follow
/// the spec's population rules).
Catalog TpchCatalog();

}  // namespace querc::engine

#endif  // QUERC_ENGINE_CATALOG_H_
