// Tests for the structural knobs of the Snowflake-style generator that
// drive the Table 1 / Table 2 reproduction: colliding template pairs
// (bag-identical, order-distinct), cross-account global families, user-
// private templates, and skewed shared-pool preferences.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "embed/embedder.h"
#include "workload/snowflake_gen.h"

namespace querc::workload {
namespace {

/// Canonical order-insensitive fingerprint (sorted normalized tokens).
std::string BagFingerprint(const LabeledQuery& q) {
  auto words = embed::TokenizeForEmbedding(q.text, q.dialect);
  std::sort(words.begin(), words.end());
  std::string fp;
  for (const auto& w : words) {
    fp += w;
    fp += ' ';
  }
  return fp;
}

/// Order-sensitive fingerprint.
std::string SeqFingerprint(const LabeledQuery& q) {
  auto words = embed::TokenizeForEmbedding(q.text, q.dialect);
  std::string fp;
  for (const auto& w : words) {
    fp += w;
    fp += ' ';
  }
  return fp;
}

SnowflakeGenerator::Options MultiAccountOptions() {
  SnowflakeGenerator::Options options;
  options.seed = 31;
  options.accounts = SnowflakeGenerator::UniformAccounts(
      /*num_accounts=*/5, /*queries_per_account=*/400,
      /*users_per_account=*/6);
  return options;
}

TEST(WorkloadStructureTest, BagCollisionsSpanAccounts) {
  // Global families must create bags observed under multiple accounts.
  Workload wl = SnowflakeGenerator(MultiAccountOptions()).Generate();
  std::map<std::string, std::set<std::string>> accounts_by_bag;
  for (const auto& q : wl) accounts_by_bag[BagFingerprint(q)].insert(q.account);
  size_t cross_account_queries = 0;
  for (const auto& q : wl) {
    if (accounts_by_bag[BagFingerprint(q)].size() > 1) {
      ++cross_account_queries;
    }
  }
  EXPECT_GT(cross_account_queries, wl.size() / 20)
      << "global families should produce cross-account bag collisions";
}

TEST(WorkloadStructureTest, SequenceStillSeparatesAccounts) {
  // Order must resolve (almost) every cross-account bag collision: the
  // sequence-oracle account accuracy must be near 1.
  Workload wl = SnowflakeGenerator(MultiAccountOptions()).Generate();
  std::map<std::string, std::map<std::string, int>> accounts_by_seq;
  for (const auto& q : wl) ++accounts_by_seq[SeqFingerprint(q)][q.account];
  long hits = 0;
  for (const auto& [seq, counts] : accounts_by_seq) {
    int best = 0;
    for (const auto& [account, c] : counts) best = std::max(best, c);
    hits += best;
  }
  double seq_oracle = static_cast<double>(hits) /
                      static_cast<double>(wl.size());
  EXPECT_GT(seq_oracle, 0.97);
}

TEST(WorkloadStructureTest, BagOracleBelowSequenceOracleForUsers) {
  // Colliding pairs + family sharing must open a measurable gap between
  // the bag and sequence ceilings on the USER task (Table 1's mechanism).
  Workload wl = SnowflakeGenerator(MultiAccountOptions()).Generate();
  auto oracle = [&](auto fingerprint) {
    std::map<std::string, std::map<std::string, int>> by_fp;
    for (const auto& q : wl) ++by_fp[fingerprint(q)][q.user];
    long hits = 0;
    for (const auto& [fp, counts] : by_fp) {
      int best = 0;
      for (const auto& [user, c] : counts) best = std::max(best, c);
      hits += best;
    }
    return static_cast<double>(hits) / static_cast<double>(wl.size());
  };
  double bag = oracle(BagFingerprint);
  double seq = oracle(SeqFingerprint);
  EXPECT_LT(bag, seq - 0.02)
      << "bag=" << bag << " seq=" << seq
      << ": order variants should carry user signal invisible to bags";
}

TEST(WorkloadStructureTest, ZeroCollisionKnobsRemoveBagGap) {
  SnowflakeGenerator::Options options = MultiAccountOptions();
  for (auto& spec : options.accounts) {
    spec.colliding_pair_rate = 0.0;
    spec.global_family_templates = 0;
    spec.private_templates_per_user = 0;
  }
  Workload wl = SnowflakeGenerator(options).Generate();
  std::map<std::string, std::set<std::string>> users_by_bag;
  std::map<std::string, std::set<std::string>> users_by_seq;
  for (const auto& q : wl) {
    users_by_bag[BagFingerprint(q)].insert(q.user);
    users_by_seq[SeqFingerprint(q)].insert(q.user);
  }
  // Without order-variant machinery, bag and sequence fingerprints carry
  // the same information (both collapse to template identity).
  EXPECT_EQ(users_by_bag.size(), users_by_seq.size());
}

TEST(WorkloadStructureTest, PrivateTemplatesConcentrateOnOneUser) {
  SnowflakeGenerator::Options options = MultiAccountOptions();
  Workload wl = SnowflakeGenerator(options).Generate();
  // Some sequence fingerprints must be user-exclusive with substantial
  // counts (the private ad-hoc templates).
  std::map<std::string, std::map<std::string, int>> users_by_seq;
  for (const auto& q : wl) ++users_by_seq[SeqFingerprint(q)][q.user];
  int exclusive_heavy = 0;
  for (const auto& [seq, counts] : users_by_seq) {
    if (counts.size() == 1 && counts.begin()->second >= 5) ++exclusive_heavy;
  }
  EXPECT_GE(exclusive_heavy, 5);
}

TEST(WorkloadStructureTest, SharedPoolPreferencesAreSkewed) {
  // Within a high-shared-rate account, a user's shared queries must
  // concentrate on few texts (quadratic-Zipf preference), so shared texts
  // still carry partial user signal.
  SnowflakeGenerator::Options options;
  options.seed = 67;
  SnowflakeGenerator::AccountSpec spec;
  spec.name = "rep";
  spec.num_users = 8;
  spec.num_queries = 4000;
  spec.shared_query_rate = 1.0;  // every query from the shared pool
  spec.shared_pool_size = 8;
  options.accounts = {spec};
  Workload wl = SnowflakeGenerator(options).Generate();

  std::map<std::string, std::map<std::string, int>> texts_by_user;
  for (const auto& q : wl) ++texts_by_user[q.user][q.text];
  for (const auto& [user, counts] : texts_by_user) {
    int total = 0;
    int top = 0;
    for (const auto& [text, c] : counts) {
      total += c;
      top = std::max(top, c);
    }
    if (total < 100) continue;
    // Uniform over 8 texts would put ~12.5% on the top text; the skewed
    // preference puts far more.
    EXPECT_GT(static_cast<double>(top) / total, 0.3) << user;
  }
}

TEST(WorkloadStructureTest, Table2OracleCeilingsMatchPaperShape) {
  // The Table 2 generator's structural ceilings: bag-of-words account
  // oracle near the paper's Doc2Vec result, sequence oracle near-perfect.
  SnowflakeGenerator::Options options;
  options.seed = 77;
  options.accounts = SnowflakeGenerator::Table2Accounts();
  Workload wl = SnowflakeGenerator(options).Generate();
  std::map<std::string, std::map<std::string, int>> by_bag;
  std::map<std::string, std::map<std::string, int>> by_seq;
  for (const auto& q : wl) {
    ++by_bag[BagFingerprint(q)][q.account];
    ++by_seq[SeqFingerprint(q)][q.account];
  }
  auto oracle = [&](const auto& m) {
    long hits = 0;
    for (const auto& [fp, counts] : m) {
      int best = 0;
      for (const auto& [label, c] : counts) best = std::max(best, c);
      hits += best;
    }
    return static_cast<double>(hits) / static_cast<double>(wl.size());
  };
  double bag = oracle(by_bag);
  double seq = oracle(by_seq);
  EXPECT_GT(bag, 0.70);
  EXPECT_LT(bag, 0.90);  // the Doc2Vec regime
  EXPECT_GT(seq, 0.99);  // the LSTM regime
}

}  // namespace
}  // namespace querc::workload
