#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace querc::obs {
namespace {

TEST(ExportPrometheus, CounterAndGaugeGolden) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", {}, "Requests served").Increment(7);
  registry.GetCounter("requests_total", {{"shard", "1"}}).Increment(3);
  registry.GetGauge("queue_depth").Set(2.0);

  EXPECT_EQ(ExportPrometheus(registry),
            "# HELP requests_total Requests served\n"
            "# TYPE requests_total counter\n"
            "requests_total 7\n"
            "requests_total{shard=\"1\"} 3\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 2\n");
}

TEST(ExportPrometheus, HistogramGolden) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat_ms");
  h.Record(0.5);
  h.Record(0.5);
  h.Record(2.0);

  std::string upper05 = [] {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g",
                  Histogram::BucketUpperBound(Histogram::BucketIndex(0.5)));
    return std::string(buf);
  }();
  std::string upper2 = [] {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g",
                  Histogram::BucketUpperBound(Histogram::BucketIndex(2.0)));
    return std::string(buf);
  }();
  EXPECT_EQ(ExportPrometheus(registry),
            "# TYPE lat_ms histogram\n"
            "lat_ms_bucket{le=\"" + upper05 + "\"} 2\n"
            "lat_ms_bucket{le=\"" + upper2 + "\"} 3\n"
            "lat_ms_bucket{le=\"+Inf\"} 3\n"
            "lat_ms_sum 3\n"
            "lat_ms_count 3\n");
}

TEST(ExportPrometheus, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"q", "say \"hi\"\\\n"}}).Increment();
  EXPECT_EQ(ExportPrometheus(registry),
            "# TYPE c counter\n"
            "c{q=\"say \\\"hi\\\"\\\\\\n\"} 1\n");
}

/// Structural validator for the exposition format: every non-comment line
/// is `name{labels} value`, each family's # TYPE precedes its samples,
/// histogram le= bounds strictly increase and end at +Inf, and
/// _bucket{+Inf} equals _count.
void ValidateExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::map<std::string, std::string> type_of;
  // name, optional {labels}, space, value.
  std::regex sample_re(
      R"(^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (-?[0-9].*|\+Inf|-Inf|NaN)$)");
  std::regex le_re(R"re(le="([^"]+)")re");
  std::map<std::string, double> last_le;       // per histogram series
  std::map<std::string, uint64_t> inf_bucket;  // _bucket{le="+Inf"} value
  std::map<std::string, uint64_t> count_of;    // _count value
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name;
      std::string type;
      fields >> name >> type;
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      type_of[name] = type;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    ASSERT_NE(line[0], '#') << "unknown comment: " << line;
    std::smatch m;
    ASSERT_TRUE(std::regex_match(line, m, sample_re)) << line;
    std::string name = m[1];
    std::string base = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t n = std::strlen(suffix);
      if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0 &&
          type_of.count(name.substr(0, name.size() - n))) {
        base = name.substr(0, name.size() - n);
      }
    }
    ASSERT_TRUE(type_of.count(base)) << "sample before # TYPE: " << line;
    if (type_of[base] == "histogram" && name == base + "_bucket") {
      std::string labels = m[2];
      std::smatch le;
      ASSERT_TRUE(std::regex_search(labels, le, le_re)) << line;
      double bound = le[1] == "+Inf"
                         ? std::numeric_limits<double>::infinity()
                         : std::stod(le[1]);
      std::string series_key =
          base;  // one histogram per label set in these tests
      if (last_le.count(series_key)) {
        EXPECT_GT(bound, last_le[series_key]) << "le not increasing: " << line;
      }
      last_le[series_key] = bound;
      if (std::isinf(bound)) {
        inf_bucket[series_key] =
            static_cast<uint64_t>(std::stoull(m[3].str()));
      }
    }
    if (type_of[base] == "histogram" && name == base + "_count") {
      count_of[base] = static_cast<uint64_t>(std::stoull(m[3].str()));
    }
  }
  for (const auto& [series, count] : count_of) {
    ASSERT_TRUE(inf_bucket.count(series)) << series << " missing +Inf bucket";
    EXPECT_EQ(inf_bucket[series], count) << series;
  }
  EXPECT_FALSE(count_of.empty()) << "expected at least one histogram";
}

TEST(ExportPrometheus, OutputParsesAsValidExposition) {
  MetricsRegistry registry;
  registry.GetCounter("querc_q_total", {}, "queries").Increment(11);
  registry.GetGauge("querc_depth", {{"pool", "a"}}).Set(1.5);
  Histogram& h = registry.GetHistogram("querc_lat_ms", {{"stage", "embed"}});
  for (int i = 1; i <= 50; ++i) h.Record(0.1 * i);
  ValidateExposition(ExportPrometheus(registry));
}

TEST(ExportPrometheus, PrefixFiltersFamilies) {
  MetricsRegistry registry;
  registry.GetCounter("querc_keep_total").Increment();
  registry.GetCounter("drop_total").Increment();
  std::string out = ExportPrometheus(registry, "querc_");
  EXPECT_NE(out.find("querc_keep_total"), std::string::npos);
  EXPECT_EQ(out.find("drop_total"), std::string::npos);
}

TEST(ExportJson, Golden) {
  MetricsRegistry registry;
  registry.GetCounter("n_total", {{"k", "v"}}).Increment(4);
  registry.GetGauge("depth").Set(1.5);
  registry.GetHistogram("ms").Record(2.0);
  EXPECT_EQ(ExportJson(registry),
            "{\"counters\":[{\"name\":\"n_total\",\"labels\":{\"k\":\"v\"},"
            "\"value\":4}],"
            "\"gauges\":[{\"name\":\"depth\",\"labels\":{},\"value\":1.5}],"
            "\"histograms\":[{\"name\":\"ms\",\"labels\":{},\"count\":1,"
            "\"sum\":2,\"min\":2,\"max\":2,\"mean\":2,\"p50\":2,\"p90\":2,"
            "\"p99\":2}]}");
}

TEST(ExportJson, ReportsPercentiles) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat_ms");
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  std::string out = ExportJson(registry);
  EXPECT_NE(out.find("\"p99\":"), std::string::npos);
  EXPECT_NE(out.find("\"count\":100"), std::string::npos);
  EXPECT_NE(out.find("\"sum\":5050"), std::string::npos);
}

}  // namespace
}  // namespace querc::obs
