#ifndef QUERC_EMBED_EMBEDDER_H_
#define QUERC_EMBED_EMBEDDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "sql/dialect.h"
#include "util/lane.h"
#include "util/status.h"
#include "workload/workload.h"

namespace querc::util {
class ThreadPool;
}  // namespace querc::util

namespace querc::embed {

/// Tokenizes `text` for the embedding pipeline: lenient lexing under
/// `dialect` followed by the default normalization (literals folded,
/// identifiers lower-cased).
std::vector<std::string> TokenizeForEmbedding(std::string_view text,
                                              sql::Dialect dialect);

/// The representation-learner half of a Querc classifier (§4): maps query
/// text to a fixed-length vector. Implementations: Doc2VecEmbedder,
/// LstmAutoencoderEmbedder (learned), FeatureEmbedder (hand-engineered
/// baseline).
///
/// The split between Embedder and labeler is the paper's key design move:
/// one embedder trained on a large combined workload serves many
/// application-specific labelers.
class Embedder {
 public:
  Embedder();
  /// Copies/moves get a *fresh* instance id: the new object is a distinct
  /// cache-key namespace even if its weights start out identical (they can
  /// diverge through further training).
  Embedder(const Embedder&);
  Embedder(Embedder&&) noexcept;
  /// Assignment keeps the target's own id (the object identity the caches
  /// key on does not change).
  Embedder& operator=(const Embedder&) { return *this; }
  Embedder& operator=(Embedder&&) noexcept { return *this; }
  virtual ~Embedder() = default;

  /// Trains on tokenized documents (as from TokenizeForEmbedding). May be
  /// a no-op for non-learned embedders.
  virtual util::Status Train(
      const std::vector<std::vector<std::string>>& docs) = 0;

  /// Embeds one tokenized document. Valid after Train() succeeded (or
  /// immediately for non-learned embedders). An *untrained* learned
  /// embedder returns the all-zero vector of dim() — never a partially
  /// meaningful fallback (uniform policy across implementations).
  virtual nn::Vec Embed(const std::vector<std::string>& words) const = 0;

  /// Embeds many tokenized documents; returns one vector per doc, in
  /// order. The default runs Embed() per doc — in parallel via
  /// `pool->ParallelFor` when `pool` is non-null (Embed is const and
  /// thread-safe in every implementation), serially otherwise. The pool
  /// tasks ride `lane` — batch by default, since corpus embedding is
  /// training/advisor churn that must not queue ahead of predict traffic
  /// on a shared pool. Implementations with a cheaper batch form may
  /// override.
  virtual std::vector<nn::Vec> EmbedBatch(
      const std::vector<std::vector<std::string>>& docs,
      util::ThreadPool* pool = nullptr,
      util::Lane lane = util::Lane::kBatch) const;

  /// Output dimensionality.
  virtual size_t dim() const = 0;

  /// Short method name for reports ("doc2vec", "lstm", "features").
  virtual std::string name() const = 0;

  /// Process-unique id of this embedder object, used to namespace
  /// template-cache keys (see EmbeddingCache::KeyFor): two live embedders
  /// never share an id, so one cache can serve many models.
  uint64_t instance_id() const { return instance_id_; }

  /// Convenience: tokenize + Embed.
  nn::Vec EmbedQuery(std::string_view text,
                     sql::Dialect dialect = sql::Dialect::kGeneric) const {
    return Embed(TokenizeForEmbedding(text, dialect));
  }

 private:
  uint64_t instance_id_;
};

/// Tokenizes every query in `workload` (each under its own dialect).
std::vector<std::vector<std::string>> TokenizeWorkload(
    const workload::Workload& workload);

/// Trains `embedder` on the tokenized `corpus` workload.
util::Status TrainOnWorkload(Embedder& embedder,
                             const workload::Workload& corpus);

/// Embeds every query of `workload`; returns one vector per query. With a
/// non-null `pool`, embedding runs batch-parallel (EmbedBatch) on `lane`.
std::vector<nn::Vec> EmbedWorkload(const Embedder& embedder,
                                   const workload::Workload& workload,
                                   util::ThreadPool* pool = nullptr,
                                   util::Lane lane = util::Lane::kBatch);

}  // namespace querc::embed

#endif  // QUERC_EMBED_EMBEDDER_H_
