#ifndef QUERC_UTIL_STRING_UTIL_H_
#define QUERC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace querc::util {

/// ASCII lower-casing (SQL keywords are ASCII; no locale surprises).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// 64-bit FNV-1a hash; stable across platforms, used for dedup keys.
uint64_t Fnv1a64(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace querc::util

#endif  // QUERC_UTIL_STRING_UTIL_H_
