#include "nn/softmax.h"

#include <cmath>

#include <gtest/gtest.h>

namespace querc::nn {
namespace {

TEST(SoftmaxTest, SumsToOneAndOrders) {
  Vec logits = {1.0, 2.0, 3.0};
  SoftmaxInPlace(logits);
  EXPECT_NEAR(logits[0] + logits[1] + logits[2], 1.0, 1e-12);
  EXPECT_LT(logits[0], logits[1]);
  EXPECT_LT(logits[1], logits[2]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  Vec logits = {1000.0, 1000.0};
  SoftmaxInPlace(logits);
  EXPECT_NEAR(logits[0], 0.5, 1e-12);
}

TEST(SoftmaxHeadTest, LossDropsAsTargetLogitRises) {
  util::Rng rng(3);
  SoftmaxHead head(4, 3, "h", rng);
  Vec h = {0.5, -0.5, 0.25};
  Vec probs;
  double loss0 = head.ForwardLoss(h, 1, probs);
  EXPECT_GT(loss0, 0.0);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2] + probs[3], 1.0, 1e-12);
}

// Gradient check of the full softmax head.
TEST(SoftmaxHeadTest, GradientCheck) {
  util::Rng rng(5);
  SoftmaxHead head(5, 4, "gc", rng);
  Vec h = {0.3, -0.2, 0.7, 0.1};
  const size_t target = 2;

  Vec probs;
  head.ForwardLoss(h, target, probs);
  Vec dh;
  head.Backward(h, target, probs, dh);

  const double eps = 1e-6;
  // dh check.
  for (size_t i = 0; i < h.size(); ++i) {
    Vec hp = h;
    hp[i] += eps;
    Vec hm = h;
    hm[i] -= eps;
    Vec tmp;
    double up = head.ForwardLoss(hp, target, tmp);
    double down = head.ForwardLoss(hm, target, tmp);
    EXPECT_NEAR(dh[i], (up - down) / (2 * eps), 1e-6);
  }
  // Parameter check (sampled).
  for (Tensor* param : head.Params()) {
    for (size_t i = 0; i < param->size(); i += 3) {
      double saved = param->value()[i];
      Vec tmp;
      param->value()[i] = saved + eps;
      double up = head.ForwardLoss(h, target, tmp);
      param->value()[i] = saved - eps;
      double down = head.ForwardLoss(h, target, tmp);
      param->value()[i] = saved;
      EXPECT_NEAR(param->grad()[i], (up - down) / (2 * eps), 1e-6);
    }
  }
}

TEST(SoftmaxHeadTest, PredictReturnsArgmax) {
  util::Rng rng(7);
  SoftmaxHead head(3, 2, "h", rng);
  // Force known weights: logits = Wh.
  Tensor* w = head.Params()[0];
  double vals[] = {1, 0, 0, 1, -1, -1};
  std::copy(vals, vals + 6, w->value().begin());
  EXPECT_EQ(head.Predict({5.0, 1.0}), 0u);
  EXPECT_EQ(head.Predict({1.0, 5.0}), 1u);
}

TEST(NegativeSamplingTest, StepReducesLossOnRepetition) {
  util::Rng rng(9);
  Tensor out(10, 6);
  Vec context(6);
  for (auto& v : context) v = rng.UniformDouble(-0.5, 0.5);
  std::vector<size_t> negatives = {3, 4, 5};
  Vec d_context;
  double first =
      NegativeSamplingStep(context.data(), 6, 1, negatives, out, 0.5,
                           d_context);
  // Apply the context update as the caller would.
  Axpy(-0.5, d_context, context);
  double second = NegativeSamplingStep(context.data(), 6, 1, negatives, out,
                                       0.5, d_context);
  EXPECT_LT(second, first);
}

TEST(NegativeSamplingTest, FrozenOutputTableUnchanged) {
  util::Rng rng(11);
  Tensor out(5, 4);
  out.XavierInit(rng);
  Vec before = out.value();
  Vec context = {0.1, 0.2, 0.3, 0.4};
  Vec d_context;
  NegativeSamplingStep(context.data(), 4, 0, {1, 2}, out, 0.1, d_context,
                       /*update_output=*/false);
  EXPECT_EQ(out.value(), before);
  // But the context gradient is still produced.
  double mag = 0.0;
  for (double v : d_context) mag += std::abs(v);
  EXPECT_GT(mag, 0.0);
}

TEST(NegativeSamplingTest, TargetCollidingNegativeSkipped) {
  util::Rng rng(13);
  Tensor out(4, 3);
  Vec context = {0.3, -0.3, 0.1};
  Vec d_context;
  // All negatives equal the target: only the positive term contributes;
  // must not blow up or double-count.
  double loss = NegativeSamplingStep(context.data(), 3, 2, {2, 2, 2}, out,
                                     0.1, d_context);
  // Positive pair with zero-initialized output row: loss = -log(0.5).
  EXPECT_NEAR(loss, std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace querc::nn
