# Empty dependencies file for test_querc_training_module.
# This may be replaced when dependencies are built.
