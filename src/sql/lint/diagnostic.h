#ifndef QUERC_SQL_LINT_DIAGNOSTIC_H_
#define QUERC_SQL_LINT_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace querc::sql::lint {

/// Diagnostic severities, ordered so comparisons express "at least as
/// severe as". `kError` findings make `querc lint` exit nonzero (CI gate);
/// `kWarning` is a probable problem; `kInfo` is an improvement opportunity.
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

/// Stable lower-case name ("info", "warning", "error").
std::string_view SeverityName(Severity severity);

/// Parses a severity name; returns false (and leaves `out` alone) on an
/// unknown name.
bool ParseSeverity(std::string_view name, Severity* out);

/// Byte range of the offending construct within the query text.
/// `length == 0` means the diagnostic applies to the whole query.
struct Span {
  size_t offset = 0;
  size_t length = 0;
};

/// One finding produced by a lint rule. `query_index` identifies the query
/// within the linted batch (0 for single-query lints).
struct Diagnostic {
  std::string rule_id;
  Severity severity = Severity::kWarning;
  Span span;
  std::string message;
  std::string fix_hint;
  size_t query_index = 0;
};

}  // namespace querc::sql::lint

#endif  // QUERC_SQL_LINT_DIAGNOSTIC_H_
