#include "embed/feature_embedder.h"

#include <gtest/gtest.h>

#include "embed/embedder.h"

namespace querc::embed {
namespace {

FeatureEmbedder MakeEmbedder() {
  FeatureEmbedder::Options options;
  return FeatureEmbedder(options);
}

std::vector<std::string> Tokens(const std::string& sql) {
  return TokenizeForEmbedding(sql, sql::Dialect::kGeneric);
}

TEST(FeatureEmbedderTest, DimMatchesConfiguration) {
  FeatureEmbedder::Options options;
  options.table_hash_buckets = 4;
  options.column_hash_buckets = 6;
  FeatureEmbedder e(options);
  EXPECT_EQ(e.dim(), FeatureEmbedder::FixedFeatureNames().size() + 10);
  EXPECT_EQ(e.Embed(Tokens("SELECT 1")).size(), e.dim());
}

TEST(FeatureEmbedderTest, CountsTablesJoinsAndFilters) {
  FeatureEmbedder e = MakeEmbedder();
  nn::Vec f = e.RawFeatures(Tokens(
      "SELECT a FROM t1, t2 WHERE t1.x = t2.y AND t1.k = 5 AND t1.z < 9"));
  // Feature layout documented by FixedFeatureNames().
  EXPECT_EQ(f[0], 2.0);   // tables
  EXPECT_EQ(f[1], 1.0);   // joins
  EXPECT_EQ(f[10], 1.0);  // eq filters
  EXPECT_EQ(f[11], 1.0);  // range filters
}

TEST(FeatureEmbedderTest, GroupByAndAggregates) {
  FeatureEmbedder e = MakeEmbedder();
  nn::Vec f = e.RawFeatures(Tokens(
      "SELECT a, SUM(b), AVG(c) FROM t GROUP BY a ORDER BY a"));
  EXPECT_EQ(f[2], 1.0);  // group by cols
  EXPECT_EQ(f[3], 1.0);  // order by cols
  EXPECT_EQ(f[4], 2.0);  // aggregates
}

TEST(FeatureEmbedderTest, SubqueryDepthCounted) {
  FeatureEmbedder e = MakeEmbedder();
  nn::Vec flat = e.RawFeatures(Tokens("SELECT a FROM t"));
  nn::Vec nested = e.RawFeatures(Tokens(
      "SELECT a FROM t WHERE x IN (SELECT y FROM u)"));
  EXPECT_EQ(flat[16], 1.0);
  EXPECT_EQ(nested[16], 2.0);
  EXPECT_EQ(nested[14], 1.0);  // subquery filter
}

TEST(FeatureEmbedderTest, DistinctTablesHashDifferently) {
  FeatureEmbedder e = MakeEmbedder();
  nn::Vec a = e.RawFeatures(Tokens("SELECT x FROM lineitem"));
  nn::Vec b = e.RawFeatures(Tokens("SELECT x FROM region"));
  EXPECT_NE(a, b);  // hashed table buckets differ (with high probability)
}

TEST(FeatureEmbedderTest, TrainScalesFeatures) {
  FeatureEmbedder e = MakeEmbedder();
  std::vector<std::vector<std::string>> corpus = {
      Tokens("SELECT a FROM t"),
      Tokens("SELECT a, b FROM t, u WHERE t.x = u.y"),
      Tokens("SELECT SUM(a) FROM t GROUP BY b"),
  };
  ASSERT_TRUE(e.Train(corpus).ok());
  // After scaling, features with nonzero variance change magnitude.
  nn::Vec raw = e.RawFeatures(corpus[1]);
  nn::Vec scaled = e.Embed(corpus[1]);
  EXPECT_EQ(raw.size(), scaled.size());
  EXPECT_NE(raw, scaled);
}

TEST(FeatureEmbedderTest, EmptyCorpusTrainFails) {
  FeatureEmbedder e = MakeEmbedder();
  EXPECT_FALSE(e.Train({}).ok());
}

TEST(FeatureEmbedderTest, TokenCountFeature) {
  FeatureEmbedder e = MakeEmbedder();
  auto toks = Tokens("SELECT a FROM t");
  EXPECT_EQ(e.RawFeatures(toks)[17], static_cast<double>(toks.size()));
}

TEST(FeatureEmbedderTest, FixedFeatureNamesMatchCount) {
  EXPECT_EQ(FeatureEmbedder::FixedFeatureNames().size(), 18u);
}

}  // namespace
}  // namespace querc::embed
