#ifndef QUERC_OBS_FLIGHT_RECORDER_H_
#define QUERC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace querc::obs {

/// What a flight-recorder event describes. Spans carry a duration; the
/// rest are instants attributing a resilience action (breaker trip, load
/// shed, sink retry, failpoint trigger, hard error) to the query that hit
/// it.
enum class EventKind : uint8_t {
  kSpan = 0,
  kBreakerTransition = 1,
  kShed = 2,
  kRetry = 3,
  kFailpoint = 4,
  kError = 5,
};
inline constexpr size_t kNumEventKinds = 6;

/// Stable lowercase name for `kind` ("span", "shed", ...); "?" for out-of-
/// range values read from a corrupt journal.
const char* EventKindName(EventKind kind);

/// One fixed-size journal record: exactly 64 bytes (one cache line), plain
/// old data, so the ring-buffer write path is a handful of stores with no
/// allocation and the reader can copy records with memcpy semantics.
/// Labels longer than the inline capacity are truncated — visible in the
/// rendered trace, never a buffer overrun.
struct FlightEvent {
  /// Inline label bytes including the terminating NUL.
  static constexpr size_t kLabelSize = 25;
  /// flags bit: this span closed its trace (the root span) — the signal
  /// the trace collector uses to declare a trace complete.
  static constexpr uint8_t kRootSpan = 0x1;

  uint64_t trace_id = 0;  ///< 0 = not attributed to any trace
  uint64_t span_id = 0;   ///< enclosing span on the emitting thread
  int64_t ts_us = 0;      ///< microseconds since the recorder's epoch
  int64_t dur_us = 0;     ///< span duration; 0 for instant events
  uint32_t tid = 0;       ///< recorder-assigned writer-lane id
  uint8_t kind = 0;       ///< EventKind
  uint8_t detail = 0;     ///< kind-specific (breaker to-state, attempt #)
  uint8_t flags = 0;      ///< kRootSpan
  char label[kLabelSize] = {};  ///< NUL-terminated, truncated

  EventKind event_kind() const { return static_cast<EventKind>(kind); }
  /// Copies `s` into `label`, truncating to kLabelSize - 1 characters.
  void SetLabel(const char* s);
};
static_assert(sizeof(FlightEvent) == 64,
              "FlightEvent must stay one cache line: the ring write path "
              "budget is a few stores");

/// Always-on, bounded, lock-free event journal. Every thread that records
/// gets its own single-producer ring buffer (claimed from a free list, so
/// rings are reused across short-lived threads and memory stays bounded);
/// the write path is a relaxed head/tail check plus one 64-byte store —
/// no mutex, no allocation, tens of nanoseconds. A full ring drops the
/// new event and counts it: recording never blocks and never lies.
///
/// Reading is two-phase in the spirit of util::ConcurrentAggregator:
/// `Drain` walks the ring registry under a reader-side mutex that writers
/// never take, copies each ring's published window, and advances its tail
/// — so a slow or concurrent reader stalls other readers, never a writer.
///
/// Conservation contract (exact at quiescence, monotonic always):
///   recorded == drained + dropped + buffered()
///
/// The process-wide instance is `FlightRecorder::Global()` — a leaked
/// singleton, so thread-local lane handles destroyed at thread exit can
/// always return their ring safely.
class FlightRecorder {
 public:
  /// Events each writer lane buffers between drains (power of two).
  static constexpr size_t kRingCapacity = 4096;

  static FlightRecorder& Global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends `ev` to this thread's ring, stamping `ev.tid` with the lane
  /// id. When the ring is full the event is dropped and counted. When the
  /// recorder is disabled this is one relaxed load and a return.
  void Record(FlightEvent ev);

  /// Convenience: an instant event stamped with the current thread's
  /// TraceContext and the current recorder time.
  void RecordInstant(EventKind kind, const char* label, uint8_t detail = 0);

  /// Convenience: a span event for `ctx` covering [ts_us, ts_us+dur_us].
  void RecordSpan(const TraceContext& ctx, int64_t ts_us, int64_t dur_us,
                  const char* label, bool root_span = false);

  /// The global enable flag (true by default — the recorder is always on;
  /// benches flip it off to measure their own overhead).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  struct Stats {
    uint64_t recorded = 0;  ///< Record calls while enabled (kept + dropped)
    uint64_t dropped = 0;   ///< ring-full drops — counted, never silent
    uint64_t drained = 0;   ///< events handed to Drain callers
    uint64_t buffered() const { return recorded - dropped - drained; }
  };
  Stats stats() const EXCLUDES(reader_mu_);

  /// Copies every published-but-undrained event into `out` (appending)
  /// and advances the rings past them. Returns the number of events
  /// moved. Safe to call concurrently with writers and other readers.
  size_t Drain(std::vector<FlightEvent>* out) EXCLUDES(reader_mu_);

  /// Microseconds since the recorder's epoch (steady clock).
  int64_t NowUs() const { return ToUs(std::chrono::steady_clock::now()); }
  int64_t ToUs(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
        .count();
  }

  /// Writer lanes ever created (lanes are reused after thread exit, so
  /// this is bounded by the peak number of concurrently recording
  /// threads, not by thread churn).
  size_t num_lanes() const EXCLUDES(reader_mu_);

 private:
  struct Ring;
  struct Lane;

  FlightRecorder();
  ~FlightRecorder() = default;

  Ring* CurrentRing();
  Ring* AcquireRing() EXCLUDES(reader_mu_);

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  /// Guards the ring registry and serializes readers; the Record path
  /// never takes it.
  mutable util::Mutex reader_mu_{util::LockRank::kFlightRecorder,
                                 "flightrec.reader_mu"};
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(reader_mu_);
};

/// One reassembled per-query trace: every journal event that carried the
/// trace id, plus the root span's identity once the trace completed.
struct FlightTrace {
  uint64_t trace_id = 0;
  std::string root_label;
  int64_t root_ts_us = 0;
  int64_t root_dur_us = 0;
  /// Sorted by ts_us once the trace is complete.
  std::vector<FlightEvent> events;

  double root_ms() const { return static_cast<double>(root_dur_us) / 1000.0; }
  /// Distinct writer lanes that contributed events (>= 2 proves the trace
  /// reassembled across threads).
  size_t num_threads() const;
};

/// Tail-latency exemplar sampler: drains the recorder, groups events by
/// trace id, and — when a trace's root span arrives — retains it in a
/// bounded reservoir of the slowest completed traces. Everything bounded
/// is counted: reservoir evictions, over-budget pending traces, and
/// events arriving after their trace was finalized are all visible in the
/// accessors, never silently gone. Single-threaded by design (one
/// collector owned by whoever reports); the cross-thread machinery lives
/// in the recorder it polls.
class TraceCollector {
 public:
  struct Options {
    /// Completed traces retained (the slowest ones win).
    size_t reservoir_capacity = 16;
    /// Incomplete traces tracked while their spans stream in; beyond
    /// this, events for *new* traces are counted as pending drops.
    size_t max_pending_traces = 1024;
  };

  TraceCollector() : TraceCollector(Options()) {}
  explicit TraceCollector(const Options& options);

  /// Drains `recorder` and folds the events in. When a root span lands,
  /// re-drains until no new roots appear, so spans a worker thread
  /// published before the root (but sitting in a ring scanned earlier in
  /// the same pass) are folded in before the trace is finalized.
  void Poll(FlightRecorder& recorder = FlightRecorder::Global());

  /// The up-to-n slowest completed traces, slowest first.
  std::vector<FlightTrace> Slowest(size_t n) const;

  /// Events seen so far for `kind`, optionally restricted to one label.
  /// Counts every drained event — including those for dropped pending
  /// traces — so journal/metric reconciliation is independent of the
  /// reservoir policy.
  uint64_t Count(EventKind kind, const std::string& label = "") const;

  uint64_t completed_traces() const { return completed_total_; }
  uint64_t reservoir_evictions() const { return evicted_; }
  uint64_t pending_dropped_events() const { return pending_dropped_; }
  uint64_t late_events() const { return late_events_; }
  uint64_t untraced_events() const { return untraced_; }

 private:
  /// Folds one batch; returns how many traces saw their root span.
  size_t Fold(const std::vector<FlightEvent>& events);
  void Finalize();

  Options options_;
  std::map<uint64_t, FlightTrace> pending_;
  std::map<uint64_t, FlightTrace> finishing_;  ///< root seen, being closed
  std::vector<FlightTrace> reservoir_;         ///< slowest-first
  std::map<std::pair<uint8_t, std::string>, uint64_t> counts_;
  uint64_t completed_total_ = 0;
  uint64_t evicted_ = 0;
  uint64_t pending_dropped_ = 0;
  uint64_t late_events_ = 0;
  uint64_t untraced_ = 0;
};

/// Chrome trace-event ("Perfetto-loadable") JSON for a set of reassembled
/// traces: spans render as complete ("ph":"X") events, instants as
/// ("ph":"i"), with microsecond timestamps sorted ascending and labels
/// JSON-escaped. Load via chrome://tracing or ui.perfetto.dev.
std::string ExportChromeTrace(const std::vector<FlightTrace>& traces);

/// One-line text rendering of a trace:
///   "trace <id> <root> <ms>ms events=<n> threads=<k> <label>=<ms> ..."
std::string FlightTraceLine(const FlightTrace& trace);

}  // namespace querc::obs

#endif  // QUERC_OBS_FLIGHT_RECORDER_H_
