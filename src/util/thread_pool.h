#ifndef QUERC_UTIL_THREAD_POOL_H_
#define QUERC_UTIL_THREAD_POOL_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "util/lane.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/topology.h"

namespace querc::util {

/// Work-aware worker pool (DESIGN.md §17) used by the QWorker pool's
/// predict fan-out and the training module's batch jobs. Tasks are void()
/// closures queued into one of three priority lanes (util::Lane):
/// interactive > normal > batch, with a starvation bound and
/// deadline-aware escalation.
///
/// Scheduling contract:
///   - Dispatch is strict lane priority: a queued interactive task always
///     runs before a queued normal task, which runs before a queued batch
///     task — except for the two overrides below.
///   - Starvation bound: after `starvation_limit` consecutive dispatches
///     that bypassed a waiting lower-lane task, the next dispatch takes
///     the lowest-priority non-empty lane, so batch work makes progress
///     under a sustained interactive flood (at >= 1/(limit+1) of the
///     dispatch rate).
///   - Deadline escalation: a queued normal/batch task whose absolute
///     deadline is within `escalation_ms` of now (pool clock) is
///     dispatched ahead of every lane — composing with the service's
///     Deadline machinery, which turns expiry into partial results, this
///     spends remaining budget on the work instead of on the queue.
///   - Bounded lanes: with `lane_capacity` > 0 a Submit into a full lane
///     runs the task inline on the submitting thread (caller-runs
///     backpressure — never dropped, never unbounded) and counts it in
///     querc_threadpool_lane_overflow_total{lane=}.
///
/// Telemetry: querc_threadpool_queue_depth / _task_ms / _tasks_total each
/// exist unlabeled (pool-wide, back-compat) and per lane ({lane=...});
/// gauge updates happen under the queue mutex, in the same critical
/// section as the queue mutation, so a concurrent scrape can never
/// observe a negative or overshot depth.
///
/// Concurrency contract (unchanged from the FIFO pool):
///   - `Submit` tasks must not throw; an escaping exception is caught and
///     logged.
///   - `ParallelFor` tracks its own batch with a completion latch; the
///     calling thread participates, so nested ParallelFor (any lane mix)
///     and concurrent batches are deadlock-free. Helper closures whose
///     batch was fully claimed before they were dequeued are skipped
///     without running, and helpers still queued when the batch drains
///     are purged — a caller-drained batch leaves the queues exactly as
///     it found them.
///   - The first exception thrown by `fn` in a ParallelFor batch is
///     rethrown on the calling thread after the batch completes.
class ThreadPool {
 public:
  /// Monotonic microsecond clock; tests inject a fake for deterministic
  /// escalation walks. Null = steady clock.
  using ClockFn = std::function<int64_t()>;

  /// `deadline_us` value meaning "no deadline".
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  struct Options {
    /// Worker count; 0 = topology default (DefaultThreadCount()).
    size_t num_threads = 0;
    /// Per-lane queue bound; 0 = unbounded. Overflow = caller-runs.
    size_t lane_capacity = 0;
    /// Consecutive lower-lane bypasses before a forced lower-lane
    /// dispatch.
    size_t starvation_limit = 16;
    /// Escalate a queued task once its deadline is within this many ms.
    double escalation_ms = 1.0;
    /// Injectable clock for deadline math (tests); null = steady clock.
    ClockFn clock;
    /// Pin worker i to System() (or `topology`) cpu i mod num_cpus, in
    /// topology order, so a pool sized to the machine gets one worker
    /// per logical cpu and fan-out tasks stay cache-local. Best-effort:
    /// pinning failure degrades to an unpinned worker.
    bool pin_threads = false;
    /// Topology used for pinning; null = Topology::System().
    const Topology* topology = nullptr;
  };

  /// Per-task scheduling parameters for Submit/ParallelFor.
  struct TaskOptions {
    Lane lane = Lane::kNormal;
    /// Absolute deadline on the pool clock (NowUs()); kNoDeadline = none.
    int64_t deadline_us = kNoDeadline;
  };

  /// Legacy constructor: `num_threads` workers (0 clamped to 1, NOT the
  /// topology default — callers wanting machine sizing pass Options or
  /// DefaultThreadCount()).
  explicit ThreadPool(size_t num_threads);

  explicit ThreadPool(const Options& options);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on the normal lane.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Enqueues a task on `lane`.
  void Submit(Lane lane, std::function<void()> task) EXCLUDES(mu_);

  /// Enqueues a task with full scheduling parameters.
  void Submit(const TaskOptions& opts, std::function<void()> task)
      EXCLUDES(mu_);

  /// Blocks until every lane is empty and no task is running. Global: a
  /// caller may also wait out tasks submitted by other threads. Batch
  /// users should prefer `ParallelFor`, which waits on its own latch.
  void WaitIdle() EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Tasks currently queued (not yet running) on `lane`.
  size_t queue_depth(Lane lane) const EXCLUDES(mu_);

  /// Microseconds on the pool's clock (steady clock unless injected).
  int64_t NowUs() const;

  /// Runs `fn(i)` for i in [0, n) across the pool and the calling thread
  /// on the normal lane. See the TaskOptions overload.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      EXCLUDES(mu_);

  /// ParallelFor on `lane`.
  void ParallelFor(Lane lane, size_t n, const std::function<void(size_t)>& fn)
      EXCLUDES(mu_);

  /// Runs `fn(i)` for i in [0, n) across the pool and the calling thread,
  /// returning when all n calls have finished. Helper tasks are queued
  /// with `opts` (lane + deadline). The callable is shared by all
  /// workers; it must be thread-safe. Safe to call from inside a pool
  /// worker (the caller participates) and concurrently from several
  /// threads (each batch has its own completion latch). Rethrows the
  /// first exception thrown by `fn` once the batch has drained.
  void ParallelFor(const TaskOptions& opts, size_t n,
                   const std::function<void(size_t)>& fn) EXCLUDES(mu_);

 private:
  /// One queued closure plus its scheduling state. Batch helpers carry
  /// their batch's claim counter so a worker (or the purge path) can
  /// skip them once every index is claimed — the closure keeps the batch
  /// alive, so the raw pointer is valid for the task's lifetime.
  struct QueuedTask {
    std::function<void()> fn;
    Lane lane = Lane::kNormal;
    int64_t deadline_us = kNoDeadline;
    const void* batch_tag = nullptr;
    const std::atomic<size_t>* batch_claimed = nullptr;
    size_t batch_n = 0;
  };

  void SubmitTask(QueuedTask task) EXCLUDES(mu_);
  void PushTaskLocked(QueuedTask task) REQUIRES(mu_);
  /// Picks the lane the next dispatch should pop from (escalation, then
  /// starvation bound, then strict priority). Requires a non-empty queue.
  /// Reads the clock only when a queued task carries a deadline.
  size_t PickLaneLocked() REQUIRES(mu_);
  /// Accounts one task leaving `lane`'s queue (gauges under the lock).
  void PopAccountingLocked(const QueuedTask& task) REQUIRES(mu_);
  /// Removes still-queued helpers of the drained batch `tag`.
  void PurgeBatch(const void* tag) EXCLUDES(mu_);
  void WorkerLoop(size_t worker_index) EXCLUDES(mu_);

  Options options_;
  mutable Mutex mu_{LockRank::kThreadPool, "threadpool.mu"};
  CondVar work_cv_;
  CondVar idle_cv_;
  std::array<std::deque<QueuedTask>, kNumLanes> queues_ GUARDED_BY(mu_);
  size_t queued_total_ GUARDED_BY(mu_) = 0;
  /// Queued tasks carrying a real deadline — lets the dispatch path skip
  /// the clock read entirely when nothing can escalate.
  size_t deadlined_ GUARDED_BY(mu_) = 0;
  /// Consecutive dispatches that bypassed a waiting lower-lane task.
  size_t starve_skips_ GUARDED_BY(mu_) = 0;
  size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  /// Immutable after the constructor returns (workers never touch it).
  std::vector<std::thread> threads_;
};

}  // namespace querc::util

#endif  // QUERC_UTIL_THREAD_POOL_H_
