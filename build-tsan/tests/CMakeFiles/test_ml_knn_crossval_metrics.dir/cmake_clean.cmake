file(REMOVE_RECURSE
  "CMakeFiles/test_ml_knn_crossval_metrics.dir/test_ml_knn_crossval_metrics.cc.o"
  "CMakeFiles/test_ml_knn_crossval_metrics.dir/test_ml_knn_crossval_metrics.cc.o.d"
  "test_ml_knn_crossval_metrics"
  "test_ml_knn_crossval_metrics.pdb"
  "test_ml_knn_crossval_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_knn_crossval_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
