#include "workload/snowflake_gen.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/string_util.h"
#include "workload/tpch_gen.h"  // date helpers

namespace querc::workload {

using util::StrFormat;

namespace {

constexpr std::array<const char*, 15> kTableStems = {
    "orders",    "events",   "sessions",  "payments", "inventory",
    "clicks",    "shipments", "products", "logs",     "metrics",
    "transactions", "campaigns", "subscriptions", "invoices", "devices"};

constexpr std::array<const char*, 20> kColumnStems = {
    "id",         "user_id",  "event_type", "amount",   "created_at",
    "updated_at", "status",   "category",   "region_id", "price",
    "quantity",   "score",    "duration_ms", "country",  "device",
    "channel",    "revenue",  "cost",       "ts",        "session_id"};

constexpr std::array<const char*, 8> kStringValues = {
    "active", "pending", "failed", "completed",
    "mobile", "desktop", "paid",   "trial"};

constexpr std::array<const char*, 4> kAggs = {"SUM", "AVG", "COUNT", "MAX"};

enum class ColumnKind { kInt, kFloat, kString, kDate };

struct SynthColumn {
  std::string name;
  ColumnKind kind;
};

struct SynthTable {
  std::string name;
  std::vector<SynthColumn> columns;
};

struct SynthSchema {
  std::vector<SynthTable> tables;
};

/// Per-user syntactic habits (token-level, visible to any embedder).
struct UserStyle {
  size_t select_rotation = 0;  // rotation applied to the select list
  size_t pred_rotation = 0;    // rotation applied to the WHERE conjuncts
  bool use_limit = false;      // appends a LIMIT when the template has none
  bool order_by_first = false; // appends ORDER BY <first select item>
};

/// A parameterized query template stored as clause components; the final
/// text is assembled per instantiation so user style can reorder pieces
/// and literal slots get fresh values.
struct QueryTemplate {
  enum class Slot { kNone, kInt, kFloat, kString, kDate };

  std::vector<std::string> select_items;
  std::string from_clause;  // "FROM t JOIN u ON ..." (order fixed)
  /// WHERE conjuncts: text prefix + literal slot (kNone => self-contained).
  std::vector<std::pair<std::string, Slot>> predicates;
  std::string group_by;  // "" or " GROUP BY x"
  std::string order_by;  // "" or " ORDER BY x"
  std::string limit;     // "" or " LIMIT n"

  int join_count = 0;
  double base_runtime = 1.0;
  double base_memory = 64.0;
  double error_rate = 0.0;
  std::string error_code;

  std::string Instantiate(util::Rng& rng, const UserStyle& style) const {
    std::string sql = "SELECT ";
    for (size_t i = 0; i < select_items.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += select_items[(i + style.select_rotation) % select_items.size()];
    }
    sql += " ";
    sql += from_clause;
    if (!predicates.empty()) {
      sql += " WHERE ";
      for (size_t i = 0; i < predicates.size(); ++i) {
        if (i > 0) sql += " AND ";
        const auto& [prefix, slot] =
            predicates[(i + style.pred_rotation) % predicates.size()];
        sql += prefix;
        switch (slot) {
          case Slot::kNone:
            break;
          case Slot::kInt:
            sql += StrFormat("%d", static_cast<int>(rng.UniformInt(1, 100000)));
            break;
          case Slot::kFloat:
            sql += StrFormat("%.2f", rng.UniformDouble(0.0, 1000.0));
            break;
          case Slot::kString:
            sql += StrFormat(
                "'%s'", kStringValues[rng.NextUint64(kStringValues.size())]);
            break;
          case Slot::kDate:
            sql += StrFormat(
                "'%s'",
                FormatDate(DaysFromCivil(2017, 1, 1) + rng.UniformInt(0, 540))
                    .c_str());
            break;
        }
      }
    }
    sql += group_by;
    if (!order_by.empty()) {
      sql += order_by;
    } else if (style.order_by_first && group_by.empty()) {
      // Order-invariant choice (lexicographic min): the style must add the
      // same token regardless of clause rotation, or it would leak the
      // rotation into the token BAG.
      sql += " ORDER BY " +
             *std::min_element(select_items.begin(), select_items.end());
    }
    if (!limit.empty()) {
      sql += limit;
    } else if (style.use_limit) {
      sql += " LIMIT 100";
    }
    return sql;
  }
};

SynthSchema MakeSchema(const std::string& account_tag, int num_tables,
                       double shared_table_fraction, util::Rng& rng) {
  SynthSchema schema;
  std::vector<size_t> stems(kTableStems.size());
  for (size_t i = 0; i < stems.size(); ++i) stems[i] = i;
  rng.Shuffle(stems);
  for (int t = 0; t < num_tables; ++t) {
    SynthTable table;
    const char* stem = kTableStems[stems[static_cast<size_t>(t) %
                                         stems.size()]];
    // Shared-name tables look identical across accounts; private ones
    // carry the account tag.
    if (rng.Bernoulli(shared_table_fraction)) {
      table.name = stem;
    } else {
      table.name = StrFormat("%s_%s", stem, account_tag.c_str());
    }
    int num_cols = static_cast<int>(rng.UniformInt(4, 9));
    std::vector<size_t> cols(kColumnStems.size());
    for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
    rng.Shuffle(cols);
    for (int c = 0; c < num_cols; ++c) {
      SynthColumn col;
      col.name = kColumnStems[cols[static_cast<size_t>(c)]];
      if (col.name == "created_at" || col.name == "updated_at" ||
          col.name == "ts") {
        col.kind = ColumnKind::kDate;
      } else if (col.name == "status" || col.name == "category" ||
                 col.name == "country" || col.name == "device" ||
                 col.name == "channel" || col.name == "event_type") {
        col.kind = ColumnKind::kString;
      } else if (col.name == "amount" || col.name == "price" ||
                 col.name == "revenue" || col.name == "cost" ||
                 col.name == "score") {
        col.kind = ColumnKind::kFloat;
      } else {
        col.kind = ColumnKind::kInt;
      }
      table.columns.push_back(std::move(col));
    }
    schema.tables.push_back(std::move(table));
  }
  return schema;
}

QueryTemplate::Slot SlotFor(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kInt:
      return QueryTemplate::Slot::kInt;
    case ColumnKind::kFloat:
      return QueryTemplate::Slot::kFloat;
    case ColumnKind::kString:
      return QueryTemplate::Slot::kString;
    case ColumnKind::kDate:
      return QueryTemplate::Slot::kDate;
  }
  return QueryTemplate::Slot::kInt;
}

const char* OpFor(ColumnKind kind, util::Rng& rng) {
  if (kind == ColumnKind::kString) return "=";
  switch (rng.UniformInt(0, 3)) {
    case 0:
      return "=";
    case 1:
      return ">";
    case 2:
      return "<";
    default:
      return ">=";
  }
}

/// Builds one random SELECT template over the account schema.
QueryTemplate MakeTemplate(const SynthSchema& schema, util::Rng& rng) {
  QueryTemplate tpl;
  int num_tables = static_cast<int>(rng.UniformInt(1, 3));
  num_tables = std::min<int>(num_tables,
                             static_cast<int>(schema.tables.size()));
  std::vector<size_t> picks(schema.tables.size());
  for (size_t i = 0; i < picks.size(); ++i) picks[i] = i;
  rng.Shuffle(picks);

  const SynthTable& t0 = schema.tables[picks[0]];
  bool group_by = rng.Bernoulli(0.4);
  if (group_by) {
    const std::string& group_col =
        t0.columns[rng.NextUint64(t0.columns.size())].name;
    const char* agg = kAggs[rng.NextUint64(kAggs.size())];
    const std::string& agg_col =
        t0.columns[rng.NextUint64(t0.columns.size())].name;
    tpl.select_items.push_back(group_col);
    tpl.select_items.push_back(
        StrFormat("%s(%s) AS agg_val", agg, agg_col.c_str()));
    tpl.group_by = " GROUP BY " + group_col;
    if (rng.Bernoulli(0.5)) tpl.order_by = " ORDER BY agg_val DESC";
  } else {
    int n_cols = static_cast<int>(
        rng.UniformInt(2, std::min<int64_t>(5, t0.columns.size())));
    for (int c = 0; c < n_cols; ++c) {
      std::string col = t0.columns[rng.NextUint64(t0.columns.size())].name;
      if (std::find(tpl.select_items.begin(), tpl.select_items.end(), col) ==
          tpl.select_items.end()) {
        tpl.select_items.push_back(std::move(col));
      }
    }
    if (tpl.select_items.empty()) tpl.select_items.push_back(t0.columns[0].name);
    if (rng.Bernoulli(0.3)) {
      tpl.order_by = " ORDER BY " + t0.columns[0].name;
    }
  }

  tpl.from_clause = "FROM " + t0.name;
  for (int j = 1; j < num_tables; ++j) {
    const SynthTable& tj = schema.tables[picks[static_cast<size_t>(j)]];
    if (tj.name == t0.name) continue;
    tpl.from_clause += StrFormat(" JOIN %s ON %s.user_id = %s.user_id",
                                 tj.name.c_str(), t0.name.c_str(),
                                 tj.name.c_str());
    ++tpl.join_count;
  }

  int num_preds = static_cast<int>(rng.UniformInt(1, 3));
  for (int p = 0; p < num_preds; ++p) {
    const SynthColumn& col = t0.columns[rng.NextUint64(t0.columns.size())];
    tpl.predicates.emplace_back(
        StrFormat("%s %s ", col.name.c_str(), OpFor(col.kind, rng)),
        SlotFor(col.kind));
  }

  if (rng.Bernoulli(0.3)) {
    tpl.limit = StrFormat(" LIMIT %d", static_cast<int>(rng.UniformInt(10, 1000)));
  }

  tpl.base_runtime =
      std::exp(rng.Gaussian(0.0, 0.8)) * (1.0 + 2.0 * tpl.join_count);
  tpl.base_memory =
      std::exp(rng.Gaussian(3.5, 0.7)) * (1.0 + tpl.join_count);
  if (tpl.join_count >= 2 && rng.Bernoulli(0.4)) {
    tpl.error_rate = 0.3;
    tpl.error_code = "OOM";
  } else if (rng.Bernoulli(0.08)) {
    tpl.error_rate = 0.5;
    tpl.error_code = rng.Bernoulli(0.5) ? "TIMEOUT" : "INTERNAL";
  }
  return tpl;
}

/// Produces an ORDER VARIANT of `tpl`: the select list and WHERE conjuncts
/// are rotated by `rotation`, yielding a query with the identical token
/// multiset but a different token sequence. After literal folding, a
/// bag-of-words embedder cannot tell a template from its variants.
QueryTemplate OrderVariant(const QueryTemplate& tpl, size_t rotation) {
  QueryTemplate out = tpl;
  if (!out.select_items.empty()) {
    std::rotate(out.select_items.begin(),
                out.select_items.begin() +
                    static_cast<long>(rotation % out.select_items.size()),
                out.select_items.end());
  }
  if (!out.predicates.empty()) {
    std::rotate(out.predicates.begin(),
                out.predicates.begin() +
                    static_cast<long>(rotation % out.predicates.size()),
                out.predicates.end());
  }
  return out;
}

/// Variant of a global family for one account: clause rotations derived
/// from the account index (accounts sharing a rotation pair stay
/// indistinguishable even to order-sensitive models — a few such ties are
/// realistic and expected).
QueryTemplate AccountFamilyVariant(const QueryTemplate& family,
                                   int account_index) {
  size_t n_sel = std::max<size_t>(1, family.select_items.size());
  size_t sel_rot = static_cast<size_t>(account_index) % n_sel;
  size_t pred_rot = (static_cast<size_t>(account_index) / n_sel) %
                    std::max<size_t>(1, family.predicates.size());
  QueryTemplate out = OrderVariant(family, sel_rot);
  if (!out.predicates.empty()) {
    std::rotate(out.predicates.begin(),
                out.predicates.begin() +
                    static_cast<long>(pred_rot % out.predicates.size()),
                out.predicates.end());
  }
  return out;
}

/// Builds the global query families shared across tenants: wide SELECTs
/// over generically named tables with 5 select items and 3 predicates, so
/// the (select, predicate) rotation grid offers 15 distinguishable
/// variants — enough to give each of the paper's 13 accounts its own.
std::vector<QueryTemplate> MakeGlobalFamilies(int count, uint64_t seed) {
  util::Rng rng(seed);
  // A plain shared schema: generic table names, no account tags.
  SynthSchema schema = MakeSchema("", /*num_tables=*/8,
                                  /*shared_table_fraction=*/1.0, rng);
  std::vector<QueryTemplate> families;
  families.reserve(static_cast<size_t>(count));
  for (int f = 0; f < count; ++f) {
    const SynthTable& t0 =
        schema.tables[static_cast<size_t>(f) % schema.tables.size()];
    QueryTemplate tpl;
    std::vector<size_t> cols(t0.columns.size());
    for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
    rng.Shuffle(cols);
    for (size_t i = 0; i < cols.size() && tpl.select_items.size() < 5; ++i) {
      tpl.select_items.push_back(t0.columns[cols[i]].name);
    }
    while (tpl.select_items.size() < 5) {
      tpl.select_items.push_back(t0.columns[0].name + "_v");
    }
    tpl.from_clause = "FROM " + t0.name;
    for (int p = 0; p < 3; ++p) {
      const SynthColumn& col = t0.columns[rng.NextUint64(t0.columns.size())];
      tpl.predicates.emplace_back(
          StrFormat("%s %s ", col.name.c_str(), OpFor(col.kind, rng)),
          SlotFor(col.kind));
    }
    tpl.base_runtime = std::exp(rng.Gaussian(0.0, 0.5));
    tpl.base_memory = std::exp(rng.Gaussian(3.5, 0.5));
    families.push_back(std::move(tpl));
  }
  return families;
}

}  // namespace

std::vector<SnowflakeGenerator::AccountSpec>
SnowflakeGenerator::Table2Accounts() {
  // Paper Table 2 rows: {#queries, #users, accuracy}. Sizes scaled by 1/20.
  // The three large low-accuracy accounts get high shared-query rates; the
  // high-accuracy accounts get none or little.
  struct Row {
    int queries;
    int users;
    double shared_rate;
  };
  constexpr Row kRows[] = {
      {73881 / 20, 28, 0.62}, {55333 / 20, 10, 0.72}, {18487 / 20, 46, 0.75},
      {5471 / 20, 21, 0.03},  {4213 / 20, 6, 0.45},   {3894 / 20, 12, 0.00},
      {3373 / 20, 9, 0.00},   {2867 / 20, 6, 0.00},   {1953 / 20, 15, 0.10},
      {1924 / 20, 4, 0.02},   {1776 / 20, 9, 0.05},   {1699 / 20, 5, 0.00},
      {1108 / 20, 12, 0.02},
  };
  std::vector<AccountSpec> specs;
  int i = 0;
  for (const Row& row : kRows) {
    AccountSpec spec;
    spec.name = StrFormat("acct%02d", i++);
    spec.num_users = row.users;
    spec.num_queries = row.queries;
    spec.shared_query_rate = row.shared_rate;
    spec.num_tables = 6;
    spec.shared_table_fraction = 0.8;
    // Enough templates that each user can have a distinctive repertoire.
    spec.templates_per_account = std::max(8, row.users * 2);
    spec.templates_per_user = 3;
    spec.shared_pool_size = std::max(6, row.users);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<SnowflakeGenerator::AccountSpec>
SnowflakeGenerator::UniformAccounts(int num_accounts, int queries_per_account,
                                    int users_per_account) {
  std::vector<AccountSpec> specs;
  for (int i = 0; i < num_accounts; ++i) {
    AccountSpec spec;
    spec.name = StrFormat("train%02d", i);
    spec.num_users = users_per_account;
    spec.num_queries = queries_per_account;
    spec.shared_query_rate = 0.1;
    spec.shared_table_fraction = 0.8;
    spec.templates_per_account = std::max(8, users_per_account * 2);
    specs.push_back(std::move(spec));
  }
  return specs;
}

Workload SnowflakeGenerator::Generate() const {
  util::Rng rng(options_.seed);
  std::vector<LabeledQuery> all;

  // Zipf-style volume skew: redistribute the total query count across
  // accounts by listing rank (rank 0 heaviest) while preserving the total
  // — deterministic, so a skewed noisy-neighbor workload replays exactly.
  std::vector<AccountSpec> accounts = options_.accounts;
  if (options_.account_skew > 0.0 && !accounts.empty()) {
    long long total = 0;
    for (const AccountSpec& spec : accounts) {
      total += std::max(0, spec.num_queries);
    }
    std::vector<double> weights(accounts.size());
    double weight_sum = 0.0;
    for (size_t r = 0; r < accounts.size(); ++r) {
      weights[r] = 1.0 / std::pow(static_cast<double>(r + 1),
                                  options_.account_skew);
      weight_sum += weights[r];
    }
    long long assigned = 0;
    for (size_t r = 0; r < accounts.size(); ++r) {
      long long share = static_cast<long long>(
          std::floor(static_cast<double>(total) * weights[r] / weight_sum));
      // An account that had traffic keeps at least one query, so labels
      // for every listed tenant stay present in the output.
      if (accounts[r].num_queries > 0 && share == 0) share = 1;
      accounts[r].num_queries = static_cast<int>(share);
      assigned += share;
    }
    // Rounding drift lands on the head (heaviest) account.
    accounts.front().num_queries += static_cast<int>(total - assigned);
  }

  // Global query families shared across tenants (see AccountSpec).
  int max_families = 0;
  for (const AccountSpec& spec : options_.accounts) {
    max_families = std::max(max_families, spec.global_family_templates);
  }
  std::vector<QueryTemplate> families =
      MakeGlobalFamilies(max_families, options_.seed ^ 0xfa111e5ULL);

  int account_index = 0;
  for (const AccountSpec& spec : accounts) {
    util::Rng acct_rng = rng.Fork();
    SynthSchema schema = MakeSchema(spec.name, spec.num_tables,
                                    spec.shared_table_fraction, acct_rng);

    std::vector<QueryTemplate> templates;
    templates.reserve(static_cast<size_t>(spec.templates_per_account));
    for (int t = 0; t < spec.templates_per_account; ++t) {
      templates.push_back(MakeTemplate(schema, acct_rng));
    }
    // Colliding pairs: odd-indexed templates become order variants of
    // their predecessor (same bag, different sequence).
    for (size_t t = 1; t < templates.size(); t += 2) {
      if (acct_rng.Bernoulli(spec.colliding_pair_rate)) {
        size_t rotation = 1 + acct_rng.NextUint64(3);
        templates[t] = OrderVariant(templates[t - 1], rotation);
      }
    }
    // Global families, rotated per account.
    for (int f = 0; f < spec.global_family_templates &&
                    f < static_cast<int>(families.size());
         ++f) {
      templates.push_back(
          AccountFamilyVariant(families[static_cast<size_t>(f)],
                               account_index));
    }

    // Frozen shared texts: instantiated once (neutral style), reused
    // verbatim by any user — the property that makes those users nearly
    // indistinguishable.
    std::vector<size_t> shared_template_ids;
    std::vector<std::string> shared_texts;
    size_t family_count = static_cast<size_t>(
        std::min<int>(spec.global_family_templates,
                      static_cast<int>(families.size())));
    size_t own_template_count = templates.size() - family_count;
    for (int s = 0; s < spec.shared_pool_size; ++s) {
      // Shared dashboards are disproportionately built on the global
      // families (the same dashboards exist at many tenants) — that is
      // what makes their texts collide across accounts up to rotation.
      size_t tid;
      if (family_count > 0 && acct_rng.Bernoulli(0.6)) {
        tid = own_template_count + acct_rng.NextUint64(family_count);
      } else {
        tid = acct_rng.NextUint64(own_template_count);
      }
      shared_template_ids.push_back(tid);
      shared_texts.push_back(templates[tid].Instantiate(acct_rng, {}));
    }

    // Per-user repertoires (Zipf-weighted template subsets) and styles.
    struct UserProfile {
      std::string name;
      std::vector<size_t> template_ids;
      std::vector<double> weights;
      /// User-specific Zipf preferences over the account's shared-text
      /// pool: real users don't sample shared dashboards uniformly, which
      /// is why the paper's repetitive accounts still show ~30-50% user
      /// accuracy rather than chance.
      std::vector<double> shared_weights;
      UserStyle style;
    };
    std::vector<UserProfile> users;
    // Template layout: [0, own_template_count) account templates,
    // [own_template_count, family_end) global-family variants, and
    // user-private templates appended at the tail below.
    const size_t family_end = templates.size();
    for (int u = 0; u < spec.num_users; ++u) {
      UserProfile profile;
      profile.name = StrFormat("%s_user%02d", spec.name.c_str(), u);
      // Repertoire: a Zipf-weighted subset of the account's own templates
      // plus one shared global-family template (dashboards everyone runs).
      std::vector<size_t> ids(own_template_count);
      for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
      acct_rng.Shuffle(ids);
      int n = std::min<int>(spec.templates_per_user,
                            static_cast<int>(ids.size()));
      for (int k = 0; k < n; ++k) {
        profile.template_ids.push_back(ids[static_cast<size_t>(k)]);
        profile.weights.push_back(1.0 / static_cast<double>(k + 1));
      }
      if (own_template_count < family_end) {
        size_t family_id =
            own_template_count +
            acct_rng.NextUint64(family_end - own_template_count);
        profile.template_ids.push_back(family_id);
        profile.weights.push_back(0.5);
      }
      // User-private ad-hoc templates. Users mostly derive their personal
      // variants from account queries (copy-paste-and-reorder), so most
      // private templates are ORDER VARIANTS of an account template —
      // bag-identical to it, distinguishable only by token order. A
      // minority are genuinely new queries.
      for (int p = 0; p < spec.private_templates_per_user; ++p) {
        if (own_template_count > 0 && acct_rng.Bernoulli(0.7)) {
          size_t base = acct_rng.NextUint64(own_template_count);
          templates.push_back(
              OrderVariant(templates[base], 1 + acct_rng.NextUint64(4)));
        } else {
          templates.push_back(MakeTemplate(schema, acct_rng));
        }
        profile.template_ids.push_back(templates.size() - 1);
        profile.weights.push_back(2.0 / (p + 1.0));
      }
      if (!shared_texts.empty()) {
        // Steep (quadratic Zipf) per-user preference over the pool.
        profile.shared_weights.resize(shared_texts.size());
        for (size_t s = 0; s < shared_texts.size(); ++s) {
          profile.shared_weights[s] =
              1.0 / (static_cast<double>(s + 1) * static_cast<double>(s + 1));
        }
        acct_rng.Shuffle(profile.shared_weights);
      }
      // Styles only ADD tokens (visible to any embedder); clause rotations
      // are reserved for colliding pairs / family variants so the bag vs
      // order distinction stays clean.
      profile.style.use_limit = acct_rng.Bernoulli(0.3);
      profile.style.order_by_first = acct_rng.Bernoulli(0.3);
      users.push_back(std::move(profile));
    }

    const std::string cluster = StrFormat(
        "cluster%d", account_index % std::max(1, options_.num_clusters));
    for (int qi = 0; qi < spec.num_queries; ++qi) {
      const UserProfile& user = users[acct_rng.NextUint64(users.size())];
      LabeledQuery q;
      q.dialect = sql::Dialect::kSnowflake;
      q.account = spec.name;
      q.user = user.name;
      q.cluster = cluster;

      size_t tid;
      if (acct_rng.Bernoulli(spec.shared_query_rate) &&
          !shared_texts.empty()) {
        size_t s = acct_rng.WeightedIndex(user.shared_weights);
        q.text = shared_texts[s];
        tid = shared_template_ids[s];
      } else {
        tid = user.template_ids[acct_rng.WeightedIndex(user.weights)];
        q.text = templates[tid].Instantiate(acct_rng, user.style);
      }
      const QueryTemplate& tpl = templates[tid];
      q.template_id = static_cast<int>(tid);
      q.runtime_seconds =
          tpl.base_runtime * std::exp(acct_rng.Gaussian(0.0, 0.3));
      q.memory_mb = tpl.base_memory * std::exp(acct_rng.Gaussian(0.0, 0.2));
      if (acct_rng.Bernoulli(tpl.error_rate)) q.error_code = tpl.error_code;
      all.push_back(std::move(q));
    }
    ++account_index;
  }

  rng.Shuffle(all);
  int64_t clock = DaysFromCivil(2018, 9, 1) * 86400;
  for (auto& q : all) {
    q.timestamp = clock;
    clock += static_cast<int64_t>(rng.UniformInt(1, 10));
  }
  return Workload(std::move(all));
}

}  // namespace querc::workload
