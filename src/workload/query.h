#ifndef QUERC_WORKLOAD_QUERY_H_
#define QUERC_WORKLOAD_QUERY_H_

#include <cstdint>
#include <string>

#include "sql/dialect.h"

namespace querc::workload {

/// The paper's data model (§2): "A labeled query is a tuple (Q, c1, c2, ...)
/// where ci is a label." We give the labels that appear in the paper's
/// applications named fields; arbitrary extra labels can ride in `extra`.
struct LabeledQuery {
  /// Raw SQL text — the only input the embedders ever see.
  std::string text;
  /// Dialect hint used by the lexer (arrives with the log stream).
  sql::Dialect dialect = sql::Dialect::kGeneric;

  // ---- typical arrival metadata ----
  int64_t timestamp = 0;     // seconds since epoch (synthetic clock)
  std::string user;          // issuing user id
  std::string account;       // customer/tenant id
  std::string cluster;       // cluster that executed the query (routing)

  // ---- verbose log labels used for training auxiliary tasks ----
  std::string error_code;    // "" = completed without error
  double runtime_seconds = 0.0;
  double memory_mb = 0.0;

  // ---- generator-internal ground truth (never shown to models) ----
  int template_id = -1;      // e.g. TPC-H query number 1..22
};

}  // namespace querc::workload

#endif  // QUERC_WORKLOAD_QUERY_H_
