# Empty dependencies file for test_nn_lstm.
# This may be replaced when dependencies are built.
