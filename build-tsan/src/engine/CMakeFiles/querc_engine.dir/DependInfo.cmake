
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/advisor.cc" "src/engine/CMakeFiles/querc_engine.dir/advisor.cc.o" "gcc" "src/engine/CMakeFiles/querc_engine.dir/advisor.cc.o.d"
  "/root/repo/src/engine/catalog.cc" "src/engine/CMakeFiles/querc_engine.dir/catalog.cc.o" "gcc" "src/engine/CMakeFiles/querc_engine.dir/catalog.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/engine/CMakeFiles/querc_engine.dir/cost_model.cc.o" "gcc" "src/engine/CMakeFiles/querc_engine.dir/cost_model.cc.o.d"
  "/root/repo/src/engine/explain.cc" "src/engine/CMakeFiles/querc_engine.dir/explain.cc.o" "gcc" "src/engine/CMakeFiles/querc_engine.dir/explain.cc.o.d"
  "/root/repo/src/engine/index.cc" "src/engine/CMakeFiles/querc_engine.dir/index.cc.o" "gcc" "src/engine/CMakeFiles/querc_engine.dir/index.cc.o.d"
  "/root/repo/src/engine/tpch_catalog.cc" "src/engine/CMakeFiles/querc_engine.dir/tpch_catalog.cc.o" "gcc" "src/engine/CMakeFiles/querc_engine.dir/tpch_catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/sql/CMakeFiles/querc_sql.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/querc_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/querc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
