# Empty dependencies file for test_querc_qworker_pool.
# This may be replaced when dependencies are built.
