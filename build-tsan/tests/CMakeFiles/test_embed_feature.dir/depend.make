# Empty dependencies file for test_embed_feature.
# This may be replaced when dependencies are built.
