#include "nn/lstm.h"

#include <cmath>

namespace querc::nn {

LstmLayer::LstmLayer(size_t input_dim, size_t hidden_dim,
                     const std::string& name, util::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_(4 * hidden_dim, input_dim, name + ".wx"),
      wh_(4 * hidden_dim, hidden_dim, name + ".wh"),
      b_(4 * hidden_dim, 1, name + ".b"),
      h_(hidden_dim, 0.0),
      c_(hidden_dim, 0.0) {
  wx_.XavierInit(rng);
  wh_.XavierInit(rng);
  // Forget-gate bias = 1.
  for (size_t j = 0; j < hidden_dim_; ++j) b_.at(hidden_dim_ + j, 0) = 1.0;
}

void LstmLayer::Reset() {
  std::fill(h_.begin(), h_.end(), 0.0);
  std::fill(c_.begin(), c_.end(), 0.0);
  cache_.clear();
}

void LstmLayer::SetState(const Vec& h, const Vec& c) {
  h_ = h;
  c_ = c;
}

const Vec& LstmLayer::Forward(const Vec& x) {
  const size_t hd = hidden_dim_;
  StepCache step;
  step.x = x;
  step.h_prev = h_;
  step.c_prev = c_;

  // z = Wx * x + Wh * h_prev + b
  Vec z(4 * hd, 0.0);
  for (size_t r = 0; r < 4 * hd; ++r) {
    z[r] = Dot(wx_.row(r), x.data(), input_dim_) +
           Dot(wh_.row(r), h_.data(), hd) + b_.at(r, 0);
  }

  step.i.resize(hd);
  step.f.resize(hd);
  step.g.resize(hd);
  step.o.resize(hd);
  step.c.resize(hd);
  step.tanh_c.resize(hd);
  for (size_t j = 0; j < hd; ++j) {
    step.i[j] = Sigmoid(z[j]);
    step.f[j] = Sigmoid(z[hd + j]);
    step.g[j] = std::tanh(z[2 * hd + j]);
    step.o[j] = Sigmoid(z[3 * hd + j]);
    step.c[j] = step.f[j] * step.c_prev[j] + step.i[j] * step.g[j];
    step.tanh_c[j] = std::tanh(step.c[j]);
  }
  c_ = step.c;
  for (size_t j = 0; j < hd; ++j) h_[j] = step.o[j] * step.tanh_c[j];

  cache_.push_back(std::move(step));
  return h_;
}

void LstmLayer::InferStep(const Vec& x, Vec* h, Vec* c) const {
  const size_t hd = hidden_dim_;
  Vec z(4 * hd, 0.0);
  for (size_t r = 0; r < 4 * hd; ++r) {
    z[r] = Dot(wx_.row(r), x.data(), input_dim_) +
           Dot(wh_.row(r), h->data(), hd) + b_.at(r, 0);
  }
  for (size_t j = 0; j < hd; ++j) {
    double i_g = Sigmoid(z[j]);
    double f_g = Sigmoid(z[hd + j]);
    double g_g = std::tanh(z[2 * hd + j]);
    double o_g = Sigmoid(z[3 * hd + j]);
    (*c)[j] = f_g * (*c)[j] + i_g * g_g;
    (*h)[j] = o_g * std::tanh((*c)[j]);
  }
}

void LstmLayer::InferSequence(const std::vector<Vec>& xs, Vec* h_out,
                              Vec* c_out) const {
  Vec h(hidden_dim_, 0.0);
  Vec c(hidden_dim_, 0.0);
  for (const Vec& x : xs) InferStep(x, &h, &c);
  if (h_out != nullptr) *h_out = std::move(h);
  if (c_out != nullptr) *c_out = std::move(c);
}

LstmLayer::BackwardResult LstmLayer::Backward(
    const std::vector<Vec>& dh_per_step, const Vec& dh_final,
    const Vec& dc_final) {
  const size_t hd = hidden_dim_;
  const size_t steps = cache_.size();
  BackwardResult result;
  result.dx.resize(steps);

  Vec dh_next(hd, 0.0);  // gradient flowing from step t+1 into h_t
  Vec dc_next(hd, 0.0);
  if (!dh_final.empty()) dh_next = dh_final;
  if (!dc_final.empty()) dc_next = dc_final;

  Vec dz(4 * hd, 0.0);
  for (size_t t = steps; t-- > 0;) {
    const StepCache& s = cache_[t];
    Vec dh = dh_next;
    if (t < dh_per_step.size() && !dh_per_step[t].empty()) {
      Axpy(1.0, dh_per_step[t], dh);
    }
    Vec dc = dc_next;
    for (size_t j = 0; j < hd; ++j) {
      double dtanh_c = dh[j] * s.o[j];
      dc[j] += dtanh_c * (1.0 - s.tanh_c[j] * s.tanh_c[j]);
      double d_o = dh[j] * s.tanh_c[j];
      double d_i = dc[j] * s.g[j];
      double d_f = dc[j] * s.c_prev[j];
      double d_g = dc[j] * s.i[j];
      dz[j] = d_i * s.i[j] * (1.0 - s.i[j]);
      dz[hd + j] = d_f * s.f[j] * (1.0 - s.f[j]);
      dz[2 * hd + j] = d_g * (1.0 - s.g[j] * s.g[j]);
      dz[3 * hd + j] = d_o * s.o[j] * (1.0 - s.o[j]);
    }

    // Parameter gradients.
    for (size_t r = 0; r < 4 * hd; ++r) {
      if (dz[r] == 0.0) continue;
      Axpy(dz[r], s.x.data(), wx_.grad_row(r), input_dim_);
      Axpy(dz[r], s.h_prev.data(), wh_.grad_row(r), hd);
      b_.grad_at(r, 0) += dz[r];
    }

    // Input gradient.
    Vec dx(input_dim_, 0.0);
    for (size_t r = 0; r < 4 * hd; ++r) {
      if (dz[r] == 0.0) continue;
      Axpy(dz[r], wx_.row(r), dx.data(), input_dim_);
    }
    result.dx[t] = std::move(dx);

    // State gradients for step t-1.
    std::fill(dh_next.begin(), dh_next.end(), 0.0);
    for (size_t r = 0; r < 4 * hd; ++r) {
      if (dz[r] == 0.0) continue;
      Axpy(dz[r], wh_.row(r), dh_next.data(), hd);
    }
    for (size_t j = 0; j < hd; ++j) dc_next[j] = dc[j] * s.f[j];
  }

  result.dh_init = std::move(dh_next);
  result.dc_init = std::move(dc_next);
  return result;
}

}  // namespace querc::nn
