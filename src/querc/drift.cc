#include "querc/drift.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace querc::core {

util::Status DriftDetector::SetReference(
    const workload::Workload& reference) {
  if (reference.empty()) {
    return util::Status::InvalidArgument("drift: empty reference window");
  }
  reference_ = embed::EmbedWorkload(*embedder_, reference);
  const size_t dim = reference_[0].size();
  reference_centroid_.assign(dim, 0.0);
  for (const nn::Vec& v : reference_) {
    nn::Axpy(1.0, v, reference_centroid_);
  }
  for (double& x : reference_centroid_) {
    x /= static_cast<double>(reference_.size());
  }
  double dispersion = 0.0;
  for (const nn::Vec& v : reference_) {
    dispersion += std::sqrt(nn::SquaredDistance(v, reference_centroid_));
  }
  reference_dispersion_ =
      std::max(1e-9, dispersion / static_cast<double>(reference_.size()));
  return util::Status::OK();
}

DriftDetector::Report DriftDetector::Check(
    const workload::Workload& recent) const {
  Report report;
  report.reference_size = reference_.size();
  if (reference_.empty() || recent.empty()) return report;

  // Deterministic stride subsample of the recent window.
  size_t stride = std::max<size_t>(1, recent.size() / options_.max_window);
  std::vector<nn::Vec> vectors;
  for (size_t i = 0; i < recent.size(); i += stride) {
    vectors.push_back(
        embedder_->EmbedQuery(recent[i].text, recent[i].dialect));
  }
  report.recent_size = vectors.size();

  const size_t dim = reference_centroid_.size();
  nn::Vec centroid(dim, 0.0);
  for (const nn::Vec& v : vectors) nn::Axpy(1.0, v, centroid);
  for (double& x : centroid) x /= static_cast<double>(vectors.size());
  report.centroid_shift =
      std::sqrt(nn::SquaredDistance(centroid, reference_centroid_)) /
      reference_dispersion_;

  double total_nn = 0.0;
  for (const nn::Vec& v : vectors) {
    double best = std::numeric_limits<double>::infinity();
    for (const nn::Vec& r : reference_) {
      best = std::min(best, nn::SquaredDistance(v, r));
    }
    total_nn += std::sqrt(best);
  }
  report.novelty = total_nn / static_cast<double>(vectors.size()) /
                   reference_dispersion_;

  report.retrain_recommended =
      report.centroid_shift > options_.centroid_threshold ||
      report.novelty > options_.novelty_threshold;
  return report;
}

}  // namespace querc::core
