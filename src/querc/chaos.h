#ifndef QUERC_QUERC_CHAOS_H_
#define QUERC_QUERC_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "querc/qworker_pool.h"

namespace querc::core {

/// One self-contained chaos soak: a sharded QWorkerPool with classifiers
/// deployed (plus a fallback for one task) is driven through three phases
/// — warmup (healthy), fault (failpoints arm a database-sink outage and a
/// classifier outage while oversized batches force load shedding), and
/// recovery (faults exhaust; the driver keeps sending traffic until every
/// circuit breaker re-closes). The report proves the service degraded
/// instead of failing: every submitted query is accounted for, breakers
/// re-close, and tail latency under fault is measured.
///
/// Deterministic by construction: faults come from counted failpoints
/// (`*N` specs), shedding from a fixed admission bound with fixed batch
/// shapes, and the synthetic stream from a seeded generator. Only the
/// breaker cooldown consults the real clock.
struct ChaosOptions {
  size_t num_shards = 2;
  /// Per-phase query counts (individually processed, latency-sampled).
  size_t warmup_queries = 100;
  size_t fault_queries = 300;
  size_t recovery_queries = 400;
  /// Database-sink failpoint hit budget as a fraction of fault_queries
  /// (>= 0.1 satisfies the "at least 10% sink failures" drill).
  double sink_failure_rate = 0.2;
  /// Arm a full classifier-task outage during the fault phase.
  bool classifier_outage = true;
  /// Admission bound; every `shed_burst_every` fault queries an oversized
  /// batch (3x the bound) is submitted to force deterministic shedding.
  size_t max_in_flight = 8;
  size_t shed_burst_every = 50;
  /// Breaker cooldown for the soak (short, so recovery is fast).
  double breaker_open_ms = 25.0;
  /// Per-Process deadline for the soak pool; 0 = unlimited.
  double deadline_ms = 0.0;
  uint64_t seed = 42;
  /// Attach a flight-recorder TraceCollector to the soak: every injected
  /// sink failure, classifier outage hit, and load shed must reconcile
  /// with a journal event, and the slowest reassembled traces are
  /// returned as evidence. Adds `flightrec_ok` to ok().
  bool flightrec = false;
};

/// Machine-readable outcome of one soak (also `BENCH_chaos.json`).
struct ChaosReport {
  // Accounting: every query submitted in any phase lands in exactly one
  // returned ProcessedQuery; `silent_drops` counts the ones that did not.
  size_t submitted = 0;
  size_t returned = 0;
  size_t silent_drops = 0;
  size_t shed = 0;
  size_t sink_errors = 0;       ///< non-OK database/training statuses
  size_t degraded = 0;          ///< fallback-answered task predictions
  size_t skipped = 0;           ///< tasks skipped with no prediction
  size_t deadline_exceeded = 0;
  double shed_rate = 0.0;       ///< shed / submitted
  /// Milliseconds from the start of the recovery phase until every
  /// breaker reported closed; < 0 when they never did.
  double recovery_ms = -1.0;
  bool breakers_reclosed = false;
  /// Breakers that left closed state during the fault phase (the drill
  /// must actually trip something to prove anything).
  size_t breakers_tripped = 0;
  // Latency percentiles of individually-processed queries, per phase.
  double p50_warmup_ms = 0.0;
  double p99_warmup_ms = 0.0;
  double p50_fault_ms = 0.0;
  double p99_fault_ms = 0.0;
  double p99_recovery_ms = 0.0;

  // Flight-recorder reconciliation (populated when options.flightrec):
  // every resilience action the soak injected must have a journal twin.
  bool flightrec_enabled = false;
  uint64_t journal_sink_failpoints = 0;   ///< kFailpoint "qworker.sink_database"
  uint64_t journal_classifier_failpoints = 0;
  uint64_t journal_sheds = 0;             ///< kShed events
  uint64_t journal_breaker_transitions = 0;
  uint64_t failpoint_hits_sink = 0;       ///< failpoint hit counters (ground truth)
  uint64_t failpoint_hits_classifier = 0;
  /// Journal counts match the injected ground truth exactly.
  bool flightrec_ok = true;
  /// One-line renderings of the slowest reassembled traces (evidence for
  /// the anomaly dump; not part of the JSON).
  std::vector<std::string> slow_traces;

  /// The drill passed: something tripped, everything re-closed, nothing
  /// was silently dropped, shedding actually engaged — and, with the
  /// flight recorder attached, every injected fault has journal evidence.
  bool ok() const {
    return breakers_tripped > 0 && breakers_reclosed && silent_drops == 0 &&
           shed > 0 && (!flightrec_enabled || flightrec_ok);
  }

  std::string ToJson() const;
};

/// Runs the soak described by `options`. Arms and disarms its own
/// failpoints (restoring a clean registry on exit).
ChaosReport RunChaosSoak(const ChaosOptions& options);

/// The noisy-neighbor drill (DESIGN.md §16): one tenant ("aggressor")
/// floods a quota'd pool at `overload_factor`x its sustained rate while
/// `num_victims` tenants stay inside their quotas, and the aggressor's
/// database sink fails throughout the flood. With tenant admission and
/// per-tenant sink breakers on, the drill must show isolation holding:
/// victims are never shed (guaranteed-minimum share), victim tail
/// latency stays bounded, only the aggressor's breakers trip, everything
/// re-closes in recovery, and every shed reconciles per account across
/// the counter series, the controller, and the flight-recorder journal.
///
/// Deterministic by construction: admission buckets and breaker
/// cooldowns run on a shared fake clock advanced `round_us` per round,
/// so shed counts and breaker walks replay bit-identically under a
/// fixed seed. Only the latency percentiles consult the real clock.
struct NoisyNeighborOptions {
  size_t num_shards = 2;
  size_t num_victims = 3;
  /// Aggressor demand per flood round as a multiple of its per-round
  /// token refill.
  double overload_factor = 10.0;
  size_t warmup_rounds = 10;
  size_t flood_rounds = 30;
  /// Upper bound on recovery rounds while waiting for breakers to
  /// re-close (each advances the fake clock by round_us).
  size_t recovery_rounds = 200;
  /// Per-tenant token bucket: capacity and sustained rate (identical for
  /// every tenant — isolation, not priority, is under test).
  double quota_burst = 16.0;
  double quota_rate_per_sec = 1000.0;
  /// Fake-clock advance per round, microseconds. With the defaults each
  /// round refills rate * round_us = 4 tokens per tenant.
  double round_us = 4000.0;
  /// Per-victim demand per round (1 latency-sampled inline Process +
  /// the rest inside the mixed batch). Keep <= the per-round refill so
  /// victims stay under quota.
  size_t victim_queries_per_round = 4;
  /// Global in-flight bound (the fairness stage's capacity).
  size_t max_in_flight = 16;
  /// Breaker cooldown in fake-clock milliseconds.
  double breaker_open_ms = 25.0;
  /// Victim flood p99 must stay within this multiple of the victims'
  /// warmup p99 (with a small absolute floor against timer noise).
  double victim_p99_factor = 20.0;
  /// Absolute floor for the p99 bound, milliseconds.
  double victim_p99_floor_ms = 10.0;
  uint64_t seed = 42;
};

/// Machine-readable outcome of one noisy-neighbor drill (also the CLI's
/// JSON). See ok() for the isolation contract.
struct NoisyNeighborReport {
  size_t submitted = 0;
  size_t returned = 0;
  size_t silent_drops = 0;
  // Per-class accounting over every phase.
  size_t aggressor_submitted = 0;
  size_t aggressor_shed = 0;
  size_t victim_submitted = 0;
  size_t victim_shed = 0;
  /// aggressor_shed / aggressor flood submissions.
  double aggressor_shed_rate = 0.0;
  /// The fraction of the aggressor's flood its quota + fair share cannot
  /// admit — the floor aggressor_shed_rate must reach.
  double overload_fraction = 0.0;
  // Controller shed totals per reason (quota/fairness/global).
  uint64_t shed_quota = 0;
  uint64_t shed_fairness = 0;
  uint64_t shed_global = 0;
  double victim_p99_warmup_ms = 0.0;
  double victim_p99_flood_ms = 0.0;
  /// The bound actually applied: max(factor * warmup p99, floor).
  double victim_p99_bound_ms = 0.0;
  /// Breakers that left closed during the flood, split by tenant class.
  size_t aggressor_breakers_tripped = 0;
  size_t victim_breakers_tripped = 0;
  bool breakers_reclosed = false;
  size_t recovery_rounds_used = 0;
  /// Resident per-tenant sink breakers at the end (scoping evidence).
  size_t tenant_breakers = 0;
  /// Per-account reconciliation held: for every tenant, the
  /// querc_shed_total{account} counter delta == the controller's
  /// per-account shed total == the journal's kShed events labeled with
  /// that account.
  bool sheds_reconciled = false;

  /// The isolation contract: nothing lost, victims untouched (no sheds,
  /// no tripped breakers, bounded p99), the aggressor shed at least its
  /// overload fraction, its breakers tripped and re-closed, and every
  /// shed reconciled per account.
  bool ok() const {
    return silent_drops == 0 && victim_shed == 0 &&
           aggressor_shed_rate >= overload_fraction - 1e-9 &&
           aggressor_breakers_tripped > 0 && victim_breakers_tripped == 0 &&
           breakers_reclosed && victim_p99_flood_ms <= victim_p99_bound_ms &&
           sheds_reconciled;
  }

  std::string ToJson() const;
};

/// Runs the noisy-neighbor drill. Uses no failpoints (the aggressor's
/// sink fails by account match) and leaves the registries clean.
NoisyNeighborReport RunNoisyNeighborDrill(const NoisyNeighborOptions& options);

}  // namespace querc::core

#endif  // QUERC_QUERC_CHAOS_H_
