#include "querc/recommender.h"

#include <algorithm>
#include <map>

namespace querc::core {

util::Status QueryRecommender::Train(const workload::Workload& history) {
  if (history.empty()) {
    return util::Status::InvalidArgument("recommender: empty history");
  }
  history_ = history;
  // Sort per-user by timestamp to derive transition pairs.
  std::vector<size_t> order(history.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (history[a].user != history[b].user) {
      return history[a].user < history[b].user;
    }
    return history[a].timestamp < history[b].timestamp;
  });

  next_of_.assign(history.size(), -1);
  for (size_t k = 0; k + 1 < order.size(); ++k) {
    size_t cur = order[k];
    size_t nxt = order[k + 1];
    if (history[cur].user == history[nxt].user) {
      next_of_[cur] = static_cast<int>(nxt);
    }
  }

  vectors_.clear();
  vectors_.reserve(history.size());
  for (const auto& q : history) {
    vectors_.push_back(embedder_->EmbedQuery(q.text, q.dialect));
  }
  trained_ = true;
  return util::Status::OK();
}

std::vector<QueryRecommender::Recommendation> QueryRecommender::Recommend(
    const workload::LabeledQuery& current) const {
  std::vector<Recommendation> out;
  if (!trained_) return out;
  nn::Vec v = embedder_->EmbedQuery(current.text, current.dialect);

  // k nearest historical queries (brute force).
  std::vector<std::pair<double, size_t>> dists;
  dists.reserve(vectors_.size());
  for (size_t i = 0; i < vectors_.size(); ++i) {
    dists.emplace_back(nn::SquaredDistance(v, vectors_[i]), i);
  }
  size_t k = std::min<size_t>(static_cast<size_t>(options_.neighbors),
                              dists.size());
  std::partial_sort(dists.begin(), dists.begin() + static_cast<long>(k),
                    dists.end());

  // Vote over the successors of the neighbors.
  std::map<std::string, double> votes;
  for (size_t i = 0; i < k; ++i) {
    int next = next_of_[dists[i].second];
    if (next < 0) continue;
    votes[history_[static_cast<size_t>(next)].text] += 1.0;
  }
  for (const auto& [text, score] : votes) out.push_back({text, score});
  std::sort(out.begin(), out.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.score > b.score;
            });
  if (out.size() > static_cast<size_t>(options_.max_recommendations)) {
    out.resize(static_cast<size_t>(options_.max_recommendations));
  }
  return out;
}

}  // namespace querc::core
