file(REMOVE_RECURSE
  "CMakeFiles/bench_qworker_throughput.dir/bench_qworker_throughput.cc.o"
  "CMakeFiles/bench_qworker_throughput.dir/bench_qworker_throughput.cc.o.d"
  "bench_qworker_throughput"
  "bench_qworker_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qworker_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
